//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§8) — see DESIGN.md §6 for the experiment index
//! and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Each `figN_*` function sweeps one parameter (exactly the sweep of the
//! corresponding paper figure), runs a batch of randomized queries per
//! point for every approach in the figure, and returns [`FigureRow`]s
//! carrying the three §8.1 metrics (communication KB, user ms, LSP ms)
//! plus the answer size. The `figures` binary prints them as aligned
//! tables and writes JSON for EXPERIMENTS.md.

mod ablations;
mod config;
mod figures;
mod runner;
mod tables;

pub use ablations::{
    ablation_opt_omega, ablation_partition, ablation_spread, ablation_update, render_partition,
    render_spread, render_update, OmegaRow, PartitionAblationRow, SpreadRow, UpdateCostRow,
};
pub use config::{ExperimentConfig, FigureRow};
pub use figures::{fig5_d, fig5_k, fig6_delta, fig6_k, fig6_n, fig6_theta, fig7, fig8_k, fig8_n};
pub use runner::{average_apnn, average_glp, average_ippf, average_ppgnn, database, Approach};
pub use tables::{
    render_table2, render_table4, table2, table4, table4_single, PrivacyCheckRow, Table2Row,
};

/// Renders rows as an aligned text table (the harness's stdout format),
/// followed by per-series sparklines of the communication metric so the
/// figure's *shape* is visible at a glance in a terminal.
pub fn render_rows(title: &str, rows: &[FigureRow]) -> String {
    let mut out = format!(
        "## {title}\n{:<18} {:>8} {:>12} {:>12} {:>12} {:>8}\n",
        "series", "x", "comm_KB", "user_ms", "lsp_ms", "pois"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>8.3} {:>12.3} {:>12.3} {:>12.3} {:>8.2}\n",
            r.series, r.x, r.comm_kb, r.user_ms, r.lsp_ms, r.pois_returned
        ));
    }
    // One sparkline per series, in first-appearance order.
    let mut series: Vec<&str> = Vec::new();
    for r in rows {
        if !series.contains(&r.series.as_str()) {
            series.push(&r.series);
        }
    }
    if rows.len() > series.len() {
        out.push('\n');
        for s in series {
            let values: Vec<f64> = rows
                .iter()
                .filter(|r| r.series == s)
                .map(|r| r.comm_kb)
                .collect();
            out.push_str(&format!("{:<18} comm {}\n", s, sparkline(&values)));
        }
    }
    out
}

/// Renders values as a unicode sparkline (shared scale ⁄ eight levels).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    if values.is_empty() || !max.is_finite() {
        return String::new();
    }
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let level = (((v - min) / span) * 7.0).round() as usize;
            BARS[level.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        // Constant series renders at the floor, not NaN.
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▁▁▁");
    }

    #[test]
    fn render_includes_sparklines_for_multirow_series() {
        let rows: Vec<FigureRow> = (0..3)
            .map(|i| FigureRow {
                series: "PPGNN".into(),
                x: i as f64,
                comm_kb: i as f64,
                user_ms: 0.0,
                lsp_ms: 0.0,
                pois_returned: 0.0,
            })
            .collect();
        let s = render_rows("t", &rows);
        assert!(s.contains('█'), "sparkline expected in:\n{s}");
    }

    #[test]
    fn render_is_stable() {
        let rows = vec![FigureRow {
            series: "PPGNN".into(),
            x: 25.0,
            comm_kb: 1.5,
            user_ms: 2.25,
            lsp_ms: 100.0,
            pois_returned: 4.0,
        }];
        let s = render_rows("fig5a", &rows);
        assert!(s.contains("fig5a"));
        assert!(s.contains("PPGNN"));
        assert!(s.contains("1.500"));
    }
}
