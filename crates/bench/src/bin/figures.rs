//! The experiment runner: regenerates every table and figure of §8.
//!
//! ```text
//! figures <experiment|all> [--queries N] [--keysize BITS] [--db N] [--seed S] [--out DIR]
//!
//! experiments: fig5_d fig5_k fig6_delta fig6_k fig6_n fig6_theta
//!              fig7 fig8_k fig8_n table2 table4 all
//! ```
//!
//! Results print as aligned tables and, with `--out`, are also written
//! as JSON (one file per experiment) for EXPERIMENTS.md bookkeeping.

use std::io::Write;

use ppgnn_bench::{
    ablation_opt_omega, ablation_partition, ablation_spread, ablation_update, fig5_d, fig5_k,
    fig6_delta, fig6_k, fig6_n, fig6_theta, fig7, fig8_k, fig8_n, render_partition, render_rows,
    render_spread, render_table2, render_table4, render_update, table2, table4, table4_single,
    ExperimentConfig, FigureRow,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures <experiment|all> [--queries N] [--keysize BITS] [--db N] [--seed S] [--out DIR]");
        std::process::exit(2);
    }
    let experiment = args[0].clone();
    let mut cfg = ExperimentConfig::default();
    let mut out_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        match flag {
            "--queries" => cfg.queries = value.parse().expect("--queries N"),
            "--keysize" => cfg.keysize = value.parse().expect("--keysize BITS"),
            "--db" => cfg.db_size = value.parse().expect("--db N"),
            "--seed" => cfg.seed = value.parse().expect("--seed S"),
            "--out" => out_dir = Some(value.clone()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    eprintln!(
        "# config: db={} queries={} keysize={} seed={}",
        cfg.db_size, cfg.queries, cfg.keysize, cfg.seed
    );

    let experiments: Vec<&str> = if experiment == "all" {
        vec![
            "fig5_d",
            "fig5_k",
            "fig6_delta",
            "fig6_k",
            "fig6_n",
            "fig6_theta",
            "fig7",
            "fig8_k",
            "fig8_n",
            "table2",
            "table4",
            "table4_single",
            "ablation_update",
            "ablation_partition",
            "ablation_omega",
            "ablation_spread",
        ]
    } else {
        vec![experiment.as_str()]
    };

    for exp in experiments {
        let started = std::time::Instant::now();
        eprintln!("# running {exp} ...");
        match exp {
            "table2" => {
                let rows = table2(&cfg);
                println!("{}", render_table2(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "table4" => {
                let rows = table4(&cfg);
                println!("{}", render_table4(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "table4_single" => {
                let rows = table4_single(&cfg);
                println!("{}", render_table4(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "ablation_update" => {
                let rows = ablation_update(&cfg);
                println!("{}", render_update(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "ablation_spread" => {
                let rows = ablation_spread(&cfg);
                println!("{}", render_spread(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "ablation_partition" => {
                let rows = ablation_partition(&cfg);
                println!("{}", render_partition(&rows));
                write_json(&out_dir, exp, &rows);
            }
            "ablation_omega" => {
                let rows = ablation_opt_omega(100, 1);
                println!("## Ablation — ω sweep at δ' = 100, m = 1");
                for r in &rows {
                    println!(
                        "ω = {:>3}  cost = {:>7.1} L_e {}",
                        r.omega,
                        r.model_cost_units,
                        if r.is_analytic_optimum {
                            " <= analytic ω*"
                        } else {
                            ""
                        }
                    );
                }
                write_json(&out_dir, exp, &rows);
            }
            name => {
                let rows: Vec<FigureRow> = match name {
                    "fig5_d" => fig5_d(&cfg),
                    "fig5_k" => fig5_k(&cfg),
                    "fig6_delta" => fig6_delta(&cfg),
                    "fig6_k" => fig6_k(&cfg),
                    "fig6_n" => fig6_n(&cfg),
                    "fig6_theta" => fig6_theta(&cfg),
                    "fig7" => fig7(&cfg),
                    "fig8_k" => fig8_k(&cfg),
                    "fig8_n" => fig8_n(&cfg),
                    other => {
                        eprintln!("unknown experiment {other}");
                        std::process::exit(2);
                    }
                };
                println!("{}", render_rows(name, &rows));
                write_json(&out_dir, name, &rows);
            }
        }
        eprintln!("# {exp} done in {:.1}s", started.elapsed().as_secs_f64());
    }
}

fn write_json<T: serde::Serialize>(out_dir: &Option<String>, name: &str, rows: &T) {
    let Some(dir) = out_dir else { return };
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/{name}.json");
    let mut f = std::fs::File::create(&path).expect("create json");
    f.write_all(
        serde_json::to_string_pretty(rows)
            .expect("serialize")
            .as_bytes(),
    )
    .expect("write json");
    eprintln!("# wrote {path}");
}
