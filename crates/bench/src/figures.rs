//! One function per figure of §8. Every sweep mirrors the paper's
//! parameter ranges (Table 3) and series exactly.

use ppgnn_baselines::{Apnn, Glp, Ippf};
use ppgnn_core::PpgnnConfig;

use crate::config::{ExperimentConfig, FigureRow};
use crate::runner::{average_apnn, average_glp, average_ippf, average_ppgnn, database, Approach};

/// Base PPGNN configuration for the single-user scenario (Table 3).
fn single_base(cfg: &ExperimentConfig) -> PpgnnConfig {
    PpgnnConfig {
        k: 8,
        d: 25,
        delta: 25,
        keysize: cfg.keysize,
        ..PpgnnConfig::paper_defaults()
    }
}

/// Base PPGNN configuration for the group scenario (Table 3).
fn group_base(cfg: &ExperimentConfig) -> PpgnnConfig {
    PpgnnConfig {
        keysize: cfg.keysize,
        ..PpgnnConfig::paper_defaults()
    }
}

/// Figure 5a–c: `n = 1`, vary `d ∈ \[5, 50\]` (δ = d). Series: PPGNN,
/// PPGNN-OPT. Expected shape: OPT wins on communication from d ≈ 15 and
/// on user cost from d ≈ 25; PPGNN always wins on LSP cost.
pub fn fig5_d(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let mut rows = Vec::new();
    for d in [5usize, 15, 25, 35, 50] {
        let base = PpgnnConfig {
            d,
            delta: d,
            ..single_base(cfg)
        };
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt] {
            rows.push(average_ppgnn(
                &pois,
                base.clone(),
                approach,
                1,
                cfg,
                d as f64,
            ));
        }
    }
    rows
}

/// Figure 5d–f: `n = 1`, vary `k ∈ \[2, 32\]` at d = 25. Series: PPGNN,
/// PPGNN-OPT, APNN (cloak of 5² cells ≡ d = 25). Expected: staged comm
/// growth (integer packing); APNN's LSP cost lowest (pre-computation).
pub fn fig5_k(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let apnn = Apnn::build(pois.clone(), 100, 32, cfg.keysize);
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16, 32] {
        let base = PpgnnConfig {
            k,
            ..single_base(cfg)
        };
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt] {
            rows.push(average_ppgnn(
                &pois,
                base.clone(),
                approach,
                1,
                cfg,
                k as f64,
            ));
        }
        rows.push(average_apnn(&apnn, k, 5, cfg, k as f64));
    }
    rows
}

/// Figure 6a–c: `n = 8`, vary `δ ∈ \[25, 200\]`. Series: PPGNN, PPGNN-OPT,
/// Naive. Expected: OPT ≪ PPGNN ≪ Naive on comm/user cost with the gap
/// growing in δ; LSP costs nearly identical (sanitation dominates).
pub fn fig6_delta(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let mut rows = Vec::new();
    for delta in [25usize, 50, 100, 150, 200] {
        let base = PpgnnConfig {
            delta,
            ..group_base(cfg)
        };
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt, Approach::Naive] {
            rows.push(average_ppgnn(
                &pois,
                base.clone(),
                approach,
                8,
                cfg,
                delta as f64,
            ));
        }
    }
    rows
}

/// Figure 6d–f: `n = 8`, vary `k ∈ \[2, 32\]`.
pub fn fig6_k(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16, 32] {
        let base = PpgnnConfig {
            k,
            ..group_base(cfg)
        };
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt, Approach::Naive] {
            rows.push(average_ppgnn(
                &pois,
                base.clone(),
                approach,
                8,
                cfg,
                k as f64,
            ));
        }
    }
    rows
}

/// Figure 6g–i: vary `n ∈ \[2, 32\]`. Expected: LSP cost linear in n
/// (sanitation inequalities grow with n); Naive's comm grows fastest.
pub fn fig6_n(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let base = group_base(cfg);
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt, Approach::Naive] {
            rows.push(average_ppgnn(
                &pois,
                base.clone(),
                approach,
                n,
                cfg,
                n as f64,
            ));
        }
    }
    rows
}

/// Figure 6j–l: vary `θ₀ ∈ [0.01, 0.1]`. Expected: comm/user cost flat;
/// LSP cost decreases then flattens (Eqn 17's sample size).
pub fn fig6_theta(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let mut rows = Vec::new();
    for theta0 in [0.01f64, 0.025, 0.05, 0.075, 0.1] {
        let base = PpgnnConfig {
            theta0,
            ..group_base(cfg)
        };
        for approach in [Approach::Ppgnn, Approach::PpgnnOpt, Approach::Naive] {
            rows.push(average_ppgnn(&pois, base.clone(), approach, 8, cfg, theta0));
        }
    }
    rows
}

/// Figure 7a–c: POIs returned per answer after sanitation, under the §8.3
/// defaults k = 8, n = 8, θ₀ = 0.01, varying each in turn. The swept
/// parameter is recorded in `x`; the three sub-figures are distinguished
/// by the series label.
pub fn fig7(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let base = PpgnnConfig {
        theta0: 0.01,
        ..group_base(cfg)
    };
    let mut rows = Vec::new();
    // 7a: vary k.
    for k in [2usize, 4, 8, 16, 32] {
        let mut row = average_ppgnn(
            &pois,
            PpgnnConfig { k, ..base.clone() },
            Approach::Ppgnn,
            8,
            cfg,
            k as f64,
        );
        row.series = "POIs-vs-k".into();
        rows.push(row);
    }
    // 7b: vary n.
    for n in [2usize, 4, 8, 16, 32] {
        let mut row = average_ppgnn(&pois, base.clone(), Approach::Ppgnn, n, cfg, n as f64);
        row.series = "POIs-vs-n".into();
        rows.push(row);
    }
    // 7c: vary θ0.
    for theta0 in [0.01f64, 0.025, 0.05, 0.075, 0.1] {
        let mut row = average_ppgnn(
            &pois,
            PpgnnConfig {
                theta0,
                ..base.clone()
            },
            Approach::Ppgnn,
            8,
            cfg,
            theta0,
        );
        row.series = "POIs-vs-theta0".into();
        rows.push(row);
    }
    rows
}

/// Figure 8a–c: `n = 8`, vary `k`. Series: PPGNN, PPGNN-NAS, IPPF, GLP.
/// Expected: IPPF's comm dwarfs the others (candidate superset); the
/// PPGNN − PPGNN-NAS LSP gap is the sanitation cost.
pub fn fig8_k(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let ippf = Ippf::new(pois.clone());
    let glp = Glp::new(pois.clone(), cfg.keysize);
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16, 32] {
        let base = PpgnnConfig {
            k,
            ..group_base(cfg)
        };
        rows.push(average_ppgnn(
            &pois,
            base.clone(),
            Approach::Ppgnn,
            8,
            cfg,
            k as f64,
        ));
        rows.push(average_ppgnn(
            &pois,
            base,
            Approach::PpgnnNas,
            8,
            cfg,
            k as f64,
        ));
        rows.push(average_ippf(&ippf, 8, k, cfg, k as f64));
        rows.push(average_glp(&glp, 8, k, cfg, k as f64));
    }
    rows
}

/// Figure 8d–f: `k = 8`, vary `n ∈ \[2, 32\]`. Expected: GLP's comm/user
/// cost grows O(n²); PPGNN's communication stays nearly flat.
pub fn fig8_n(cfg: &ExperimentConfig) -> Vec<FigureRow> {
    let pois = database(cfg);
    let ippf = Ippf::new(pois.clone());
    let glp = Glp::new(pois.clone(), cfg.keysize);
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let base = group_base(cfg);
        rows.push(average_ppgnn(
            &pois,
            base.clone(),
            Approach::Ppgnn,
            n,
            cfg,
            n as f64,
        ));
        rows.push(average_ppgnn(
            &pois,
            base,
            Approach::PpgnnNas,
            n,
            cfg,
            n as f64,
        ));
        rows.push(average_ippf(&ippf, n, 8, cfg, n as f64));
        rows.push(average_glp(&glp, n, 8, cfg, n as f64));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smoke sweep end-to-end (tiny database, 2 queries, d=4/δ=8
    /// via the smoke profile would diverge from the paper's Table 3, so
    /// the real configs run at reduced scale instead).
    #[test]
    fn fig5_d_smoke() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.queries = 1;
        let rows = fig5_d(&cfg);
        assert_eq!(rows.len(), 10); // 5 points × 2 series
        assert!(rows.iter().all(|r| r.comm_kb > 0.0));
    }
}
