//! Ablation experiments for design choices DESIGN.md calls out — beyond
//! the paper's own figures:
//!
//! * [`ablation_update`]: the §1/§8.2 dynamic-database argument measured:
//!   per-update cost of PPGNN's index (no pre-computation to invalidate)
//!   vs APNN's per-cell pre-computed answers.
//! * [`ablation_partition`]: what the Eqn 7–10 optimization buys — the
//!   optimal δ′ versus the naive "one segment, α = n" and "δ segments"
//!   fallbacks.
//! * [`ablation_opt_omega`]: the §6 communication model `cost(ω)` swept
//!   over ω, confirming the analytic optimum `ω* ≈ √(δ′/2)`.

use serde::{Deserialize, Serialize};

use ppgnn_baselines::Apnn;
use ppgnn_core::engine::{DynamicMbmEngine, QueryEngine};
use ppgnn_core::partition::solve_partition;
use ppgnn_datagen::Workload;
use ppgnn_geo::{Aggregate, Poi, Point};

use crate::config::ExperimentConfig;
use crate::runner::database;

/// One row of the update-cost ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateCostRow {
    pub approach: String,
    pub updates: usize,
    pub total_ms: f64,
    pub per_update_us: f64,
    /// Pre-computed cells recomputed (APNN only).
    pub cells_recomputed: u64,
    /// Query latency after the update burst (index still healthy?).
    pub post_query_us: f64,
}

/// Dynamic-database ablation: apply a burst of insertions to both
/// indexes and measure per-update cost plus post-burst query latency.
pub fn ablation_update(cfg: &ExperimentConfig) -> Vec<UpdateCostRow> {
    let pois = database(cfg);
    let updates = 200usize.min(cfg.db_size / 10).max(10);
    let new_pois: Vec<Poi> = Workload::unit(cfg.seed ^ 0xD1)
        .batch(updates, 1)
        .into_iter()
        .enumerate()
        .map(|(i, g)| Poi::new((cfg.db_size + i) as u32, g[0]))
        .collect();
    let probe = vec![Point::new(0.4, 0.6), Point::new(0.6, 0.4)];

    let mut rows = Vec::new();

    // PPGNN's engine: buffered dynamic R-tree.
    let engine = DynamicMbmEngine::new(pois.clone());
    let t0 = std::time::Instant::now();
    for p in &new_pois {
        engine.insert(*p);
    }
    let total = t0.elapsed();
    let tq = std::time::Instant::now();
    let _ = engine.answer(&probe, 8, Aggregate::Sum);
    rows.push(UpdateCostRow {
        approach: "PPGNN (dynamic R-tree)".into(),
        updates,
        total_ms: total.as_secs_f64() * 1e3,
        per_update_us: total.as_secs_f64() * 1e6 / updates as f64,
        cells_recomputed: 0,
        post_query_us: tq.elapsed().as_secs_f64() * 1e6,
    });

    // APNN: pre-computed per-cell answers (the paper's default-equivalent
    // 100×100 grid is expensive to even build at full db size; scale the
    // grid with the budget).
    let grid_cells = 50;
    let mut apnn = Apnn::build(pois, grid_cells, 8, cfg.keysize);
    let mut cells = 0u64;
    let t0 = std::time::Instant::now();
    for p in &new_pois {
        cells += apnn.insert(*p) as u64;
    }
    let total = t0.elapsed();
    rows.push(UpdateCostRow {
        approach: format!("APNN ({grid_cells}×{grid_cells} pre-computed grid)"),
        updates,
        total_ms: total.as_secs_f64() * 1e3,
        per_update_us: total.as_secs_f64() * 1e6 / updates as f64,
        cells_recomputed: cells,
        post_query_us: 0.0,
    });

    rows
}

/// One row of the partition ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionAblationRow {
    pub n: usize,
    pub d: usize,
    pub delta: usize,
    /// δ′ from the exact Eqn 7–10 solver.
    pub optimal: u128,
    /// δ′ if LSP naively used one segment with α = n (full cartesian power).
    pub naive_full_power: u128,
    /// δ′ of the Naive protocol (δ columns, every user pays δ locations).
    pub naive_columns: u128,
    pub solver_micros: f64,
}

/// Partition-solver ablation: how many *unnecessary* candidate queries
/// the optimization avoids, and what solving costs.
pub fn ablation_partition(_cfg: &ExperimentConfig) -> Vec<PartitionAblationRow> {
    let mut rows = Vec::new();
    for (n, d, delta) in [
        (2usize, 25usize, 50usize),
        (4, 25, 100),
        (8, 25, 100),
        (8, 25, 200),
        (16, 25, 100),
        (32, 50, 200),
    ] {
        let t0 = std::time::Instant::now();
        let p = solve_partition(n, d, delta).expect("feasible paper-scale instance");
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        rows.push(PartitionAblationRow {
            n,
            d,
            delta,
            optimal: p.delta_prime(),
            naive_full_power: (d as u128).saturating_pow(n as u32),
            naive_columns: delta as u128,
            solver_micros: micros,
        });
    }
    rows
}

/// One row of the ω-sweep ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OmegaRow {
    pub omega: usize,
    /// The §6 model `cost(ω) = (2ω + δ′/ω + 2m)·L_e`, in ciphertext units.
    pub model_cost_units: f64,
    pub is_analytic_optimum: bool,
}

/// Sweeps ω for a fixed δ′ and confirms the analytic optimum of Eqn 18.
pub fn ablation_opt_omega(delta_prime: usize, m: usize) -> Vec<OmegaRow> {
    let analytic = ppgnn_core::opt_split(delta_prime).0;
    (1..=delta_prime.min(40))
        .map(|omega| {
            let block = delta_prime.div_ceil(omega);
            OmegaRow {
                omega,
                model_cost_units: 2.0 * omega as f64 + block as f64 + 2.0 * m as f64,
                is_analytic_optimum: omega == analytic,
            }
        })
        .collect()
}

/// One row of the group-spread ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpreadRow {
    /// Per-axis half-width of the group cluster (1.0 ≈ uniform groups).
    pub spread: f64,
    /// Average POIs surviving sanitation.
    pub pois_returned: f64,
    /// Average LSP milliseconds.
    pub lsp_ms: f64,
}

/// Group-spread ablation (beyond the paper): how the geometry of the
/// group affects answer sanitation. Measured effect: *tight* groups
/// keep MORE POIs (≈4 at spread 0.02 vs ≈2 at uniform). Intuition: a
/// tight group's ranked POIs all sit in one neighborhood, so their
/// pairwise bisectors cut the space into nearly-parallel slabs that
/// still leave a large feasible region for each member; spread-out
/// groups produce bisectors with diverse orientations whose
/// intersection pins the target much harder.
pub fn ablation_spread(cfg: &ExperimentConfig) -> Vec<SpreadRow> {
    use ppgnn_core::{run_ppgnn_with_keys, Lsp, PpgnnConfig};
    use ppgnn_paillier::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let pois = database(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5BAD);
    let keys = generate_keypair(cfg.keysize, &mut rng);
    let ppgnn = PpgnnConfig {
        keysize: cfg.keysize,
        ..PpgnnConfig::paper_defaults()
    };
    let lsp = Lsp::new(pois, ppgnn);
    let mut rows = Vec::new();
    for spread in [0.02f64, 0.05, 0.1, 0.25, 1.0] {
        let mut workload = Workload::unit(cfg.seed ^ 0x5BAE);
        let mut pois_sum = 0usize;
        let mut lsp_secs = 0.0;
        for _ in 0..cfg.queries {
            let users = workload.next_clustered_group(8, spread);
            let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng)
                .expect("spread ablation run");
            pois_sum += run.pois_returned;
            lsp_secs += run.report.lsp_cpu_secs;
        }
        rows.push(SpreadRow {
            spread,
            pois_returned: pois_sum as f64 / cfg.queries as f64,
            lsp_ms: lsp_secs * 1e3 / cfg.queries as f64,
        });
    }
    rows
}

/// Renders the spread ablation.
pub fn render_spread(rows: &[SpreadRow]) -> String {
    let mut out = format!(
        "## Ablation — group spread vs sanitation\n{:>8} {:>14} {:>10}\n",
        "spread", "pois_returned", "lsp_ms"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8.2} {:>14.2} {:>10.1}\n",
            r.spread, r.pois_returned, r.lsp_ms
        ));
    }
    out
}

/// Renders the update ablation.
pub fn render_update(rows: &[UpdateCostRow]) -> String {
    let mut out = format!(
        "## Ablation — database update cost\n{:<34} {:>8} {:>10} {:>14} {:>10}\n",
        "approach", "updates", "total_ms", "per_update_us", "cells"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>8} {:>10.2} {:>14.2} {:>10}\n",
            r.approach, r.updates, r.total_ms, r.per_update_us, r.cells_recomputed
        ));
    }
    out
}

/// Renders the partition ablation.
pub fn render_partition(rows: &[PartitionAblationRow]) -> String {
    let mut out = format!(
        "## Ablation — partition optimization (Eqn 7-10)\n{:>4} {:>4} {:>6} {:>10} {:>16} {:>14} {:>12}\n",
        "n", "d", "δ", "optimal δ'", "1-segment δ'", "Naive cols", "solver_us"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>4} {:>6} {:>10} {:>16} {:>14} {:>12.1}\n",
            r.n, r.d, r.delta, r.optimal, r.naive_full_power, r.naive_columns, r.solver_micros
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_ablation_shows_ppgnn_advantage() {
        let cfg = ExperimentConfig {
            db_size: 3_000,
            queries: 1,
            keysize: 128,
            seed: 5,
        };
        let rows = ablation_update(&cfg);
        assert_eq!(rows.len(), 2);
        let ppgnn = &rows[0];
        let apnn = &rows[1];
        assert!(
            ppgnn.per_update_us < apnn.per_update_us,
            "PPGNN updates ({} µs) must be cheaper than APNN ({} µs)",
            ppgnn.per_update_us,
            apnn.per_update_us
        );
        assert!(apnn.cells_recomputed > 0);
    }

    #[test]
    fn partition_ablation_optimal_between_bounds() {
        let cfg = ExperimentConfig::smoke();
        for r in ablation_partition(&cfg) {
            assert!(r.optimal >= r.delta as u128, "feasibility");
            assert!(
                r.optimal <= r.naive_full_power,
                "the optimum cannot exceed the full cartesian power"
            );
        }
    }

    #[test]
    fn omega_sweep_minimum_is_analytic() {
        for (dp, m) in [(50usize, 1usize), (100, 1), (200, 2)] {
            let rows = ablation_opt_omega(dp, m);
            let best = rows
                .iter()
                .min_by(|a, b| a.model_cost_units.total_cmp(&b.model_cost_units))
                .unwrap();
            let analytic = rows.iter().find(|r| r.is_analytic_optimum).unwrap();
            // The analytic ω is within one unit of cost of the swept optimum
            // (integer rounding of √(δ'/2)).
            assert!(
                analytic.model_cost_units <= best.model_cost_units + 2.0,
                "δ'={dp}: analytic {} vs best {}",
                analytic.model_cost_units,
                best.model_cost_units
            );
        }
    }
}
