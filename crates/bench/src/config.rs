//! Experiment configuration and result rows.

use serde::{Deserialize, Serialize};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// POIs in the synthetic Sequoia-like database (paper: 62 556).
    pub db_size: usize,
    /// Randomized queries averaged per data point (paper: 500; the
    /// default is smaller so a full sweep fits in CI time — raise it
    /// with `--queries` for publication-grade numbers).
    pub queries: usize,
    /// Paillier key size in bits (paper: 1024; default 512 so sweeps
    /// run quickly — ciphertext *counts*, and therefore every
    /// crossover/shape, are key-size independent).
    pub keysize: usize,
    /// Master seed for datasets, workloads and protocol randomness.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            db_size: 62_556,
            queries: 20,
            keysize: 512,
            seed: 20180326,
        }
    }
}

impl ExperimentConfig {
    /// A tiny configuration for unit tests of the harness itself.
    pub fn smoke() -> Self {
        ExperimentConfig {
            db_size: 2_000,
            queries: 2,
            keysize: 128,
            seed: 7,
        }
    }
}

/// One (series, x) data point of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureRow {
    /// Series label ("PPGNN", "PPGNN-OPT", "Naive", "APNN", "IPPF",
    /// "GLP", "PPGNN-NAS").
    pub series: String,
    /// The swept parameter value.
    pub x: f64,
    /// Average total communication per query, KB.
    pub comm_kb: f64,
    /// Average summed user CPU per query, milliseconds.
    pub user_ms: f64,
    /// Average LSP CPU per query, milliseconds.
    pub lsp_ms: f64,
    /// Average POIs returned per answer (Figure 7's metric).
    pub pois_returned: f64,
}
