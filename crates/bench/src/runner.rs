//! Batched protocol execution: run `queries` randomized group queries for
//! one approach and average the cost reports into a [`FigureRow`].

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ppgnn_baselines::{Apnn, Glp, Ippf};
use ppgnn_core::{run_ppgnn_with_keys, Lsp, PpgnnConfig, Variant};
use ppgnn_datagen::{sequoia_like, Workload};
use ppgnn_geo::Poi;
use ppgnn_paillier::{generate_keypair, Keypair};
use ppgnn_sim::CostReport;

use crate::config::{ExperimentConfig, FigureRow};

/// The approaches that appear across Figures 5–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    Ppgnn,
    PpgnnOpt,
    PpgnnNas,
    Naive,
    Apnn,
    Ippf,
    Glp,
}

impl Approach {
    /// Series label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Ppgnn => "PPGNN",
            Approach::PpgnnOpt => "PPGNN-OPT",
            Approach::PpgnnNas => "PPGNN-NAS",
            Approach::Naive => "Naive",
            Approach::Apnn => "APNN",
            Approach::Ippf => "IPPF",
            Approach::Glp => "GLP",
        }
    }
}

/// Builds the shared synthetic database once per experiment.
pub fn database(cfg: &ExperimentConfig) -> Vec<Poi> {
    sequoia_like(cfg.db_size, cfg.seed)
}

fn row_from(series: &str, x: f64, report: &CostReport, runs: u64) -> FigureRow {
    let avg = report.averaged(1); // reports are already summed; scale below
    let runs_f = runs as f64;
    FigureRow {
        series: series.to_string(),
        x,
        comm_kb: avg.comm_kb() / runs_f,
        user_ms: avg.user_cpu_secs * 1000.0 / runs_f,
        lsp_ms: avg.lsp_cpu_secs * 1000.0 / runs_f,
        pois_returned: report.counters.get("pois_returned").copied().unwrap_or(0) as f64 / runs_f,
    }
}

/// Runs a PPGNN-family approach for `queries` random `n`-user groups and
/// averages the costs. A single keypair is generated per batch and its
/// generation cost amortized over the batch (see EXPERIMENTS.md §Method).
pub fn average_ppgnn(
    pois: &[Poi],
    ppgnn: PpgnnConfig,
    approach: Approach,
    n: usize,
    cfg: &ExperimentConfig,
    x: f64,
) -> FigureRow {
    let ppgnn = match approach {
        Approach::Ppgnn => PpgnnConfig {
            variant: Variant::Plain,
            ..ppgnn
        },
        Approach::PpgnnOpt => PpgnnConfig {
            variant: Variant::Opt,
            ..ppgnn
        },
        Approach::PpgnnNas => PpgnnConfig {
            variant: Variant::Plain,
            sanitize: false,
            ..ppgnn
        },
        Approach::Naive => PpgnnConfig {
            variant: Variant::Naive,
            ..ppgnn
        },
        _ => panic!("{approach:?} is not a PPGNN-family approach"),
    };
    let keysize = ppgnn.keysize;
    let lsp = Lsp::new(pois.to_vec(), ppgnn);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let keys: Keypair = generate_keypair(keysize, &mut rng);
    let mut workload = Workload::unit(cfg.seed ^ 0xCAFE);

    let mut total = CostReport::default();
    let mut pois_sum = 0u64;
    for _ in 0..cfg.queries {
        let users = workload.next_group(n);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng)
            .expect("configured experiment must be runnable");
        accumulate(&mut total, &run.report);
        pois_sum += run.pois_returned as u64;
    }
    total.counters.insert("pois_returned".into(), pois_sum);
    row_from(approach.label(), x, &total, cfg.queries as u64)
}

/// Runs the APNN baseline (`n = 1`) for a batch of random users.
pub fn average_apnn(apnn: &Apnn, k: usize, b: usize, cfg: &ExperimentConfig, x: f64) -> FigureRow {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA1);
    let keys = generate_keypair(cfg.keysize, &mut rng);
    let mut workload = Workload::unit(cfg.seed ^ 0xA2);
    let mut total = CostReport::default();
    let mut pois_sum = 0u64;
    for _ in 0..cfg.queries {
        let user = workload.next_group(1)[0];
        let run = apnn.query(user, k, b, &keys, &mut rng);
        accumulate(&mut total, &run.report);
        pois_sum += run.answer.len() as u64;
    }
    total.counters.insert("pois_returned".into(), pois_sum);
    row_from(Approach::Apnn.label(), x, &total, cfg.queries as u64)
}

/// Runs the IPPF baseline for a batch of random groups.
pub fn average_ippf(ippf: &Ippf, n: usize, k: usize, cfg: &ExperimentConfig, x: f64) -> FigureRow {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x1FF);
    let mut workload = Workload::unit(cfg.seed ^ 0x200);
    let mut total = CostReport::default();
    let mut pois_sum = 0u64;
    for _ in 0..cfg.queries {
        let users = workload.next_group(n);
        let run = ippf.query(&users, k, &mut rng);
        accumulate(&mut total, &run.report);
        pois_sum += run.answer.len() as u64;
    }
    total.counters.insert("pois_returned".into(), pois_sum);
    row_from(Approach::Ippf.label(), x, &total, cfg.queries as u64)
}

/// Runs the GLP baseline for a batch of random groups (per-user keys are
/// generated once per batch, mirroring the PPGNN amortization).
pub fn average_glp(glp: &Glp, n: usize, k: usize, cfg: &ExperimentConfig, x: f64) -> FigureRow {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x61F);
    let keys: Vec<Keypair> = (0..n)
        .map(|_| generate_keypair(cfg.keysize, &mut rng))
        .collect();
    let mut workload = Workload::unit(cfg.seed ^ 0x620);
    let mut total = CostReport::default();
    let mut pois_sum = 0u64;
    for _ in 0..cfg.queries {
        let users = workload.next_group(n);
        let run = glp.query(&users, k, Some(&keys), &mut rng);
        accumulate(&mut total, &run.report);
        pois_sum += run.answer.len() as u64;
    }
    total.counters.insert("pois_returned".into(), pois_sum);
    row_from(Approach::Glp.label(), x, &total, cfg.queries as u64)
}

fn accumulate(total: &mut CostReport, run: &CostReport) {
    total.comm_bytes_total += run.comm_bytes_total;
    total.comm_bytes_intra_group += run.comm_bytes_intra_group;
    total.comm_bytes_user_lsp += run.comm_bytes_user_lsp;
    total.user_cpu_secs += run.user_cpu_secs;
    total.lsp_cpu_secs += run.lsp_cpu_secs;
    for (k, v) in &run.counters {
        *total.counters.entry(k.clone()).or_default() += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppgnn_smoke_row() {
        let cfg = ExperimentConfig::smoke();
        let pois = database(&cfg);
        let ppgnn = PpgnnConfig {
            k: 4,
            d: 4,
            delta: 8,
            keysize: cfg.keysize,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let row = average_ppgnn(&pois, ppgnn, Approach::Ppgnn, 2, &cfg, 8.0);
        assert_eq!(row.series, "PPGNN");
        assert!(row.comm_kb > 0.0);
        assert!(row.user_ms > 0.0);
        assert!(row.lsp_ms > 0.0);
        assert!(row.pois_returned > 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let all = [
            Approach::Ppgnn,
            Approach::PpgnnOpt,
            Approach::PpgnnNas,
            Approach::Naive,
            Approach::Apnn,
            Approach::Ippf,
            Approach::Glp,
        ];
        let mut labels: Vec<&str> = all.iter().map(|a| a.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
