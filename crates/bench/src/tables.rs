//! Table 2 (performance analysis) and Table 4 (privacy comparison),
//! both *verified empirically* rather than just restated.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ppgnn_baselines::attacks::{glp_centroid_attack, ippf_chain_attack};
use ppgnn_core::attack::feasible_region_fraction;
use ppgnn_core::{run_ppgnn_with_keys, Lsp, PpgnnConfig, Variant};
use ppgnn_datagen::Workload;
use ppgnn_geo::{Aggregate, Point, Rect};
use ppgnn_paillier::generate_keypair;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::runner::{average_ppgnn, database, Approach};

/// One Table 2 verification row: a cost component, its asymptotic formula
/// and the measured growth ratio between two δ′ scales.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    pub component: String,
    pub formula: String,
    /// δ′ grew by this factor between the two measurements.
    pub delta_ratio: f64,
    /// The measured cost grew by this factor.
    pub measured_ratio: f64,
    /// The factor the formula predicts (O(δ′) ⇒ δ-ratio, O(√δ′) ⇒ √ of it).
    pub predicted_ratio: f64,
}

/// Table 2: measure PPGNN and PPGNN-OPT at δ = 50 and δ = 200 and check
/// the dominant terms scale as the paper's formulas predict
/// (`O(δ′)·L_e` vs `O(√δ′)·L_e` for communication and user cost).
pub fn table2(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    let pois = database(cfg);
    let (lo, hi) = (50usize, 200usize);
    let base = PpgnnConfig {
        keysize: cfg.keysize,
        sanitize: false, // isolate the crypto terms the formulas describe
        ..PpgnnConfig::paper_defaults()
    };
    let measure = |delta: usize, approach: Approach| {
        average_ppgnn(
            &pois,
            PpgnnConfig {
                delta,
                ..base.clone()
            },
            approach,
            8,
            cfg,
            delta as f64,
        )
    };
    let ratio = hi as f64 / lo as f64;
    let mut rows = Vec::new();
    for (approach, formula, predicted) in [
        (Approach::Ppgnn, "O(δ')·L_e", ratio),
        (Approach::PpgnnOpt, "O(√δ')·L_e", ratio.sqrt()),
    ] {
        let a = measure(lo, approach);
        let b = measure(hi, approach);
        rows.push(Table2Row {
            component: format!("{} comm (ciphertext part)", approach.label()),
            formula: formula.to_string(),
            delta_ratio: ratio,
            measured_ratio: ciphertext_comm(&b) / ciphertext_comm(&a),
            predicted_ratio: predicted,
        });
        rows.push(Table2Row {
            component: format!("{} user cost", approach.label()),
            formula: formula.replace("L_e", "C_e"),
            delta_ratio: ratio,
            measured_ratio: b.user_ms / a.user_ms,
            predicted_ratio: predicted,
        });
    }
    rows
}

/// Subtracts the δ-independent location-set bytes (`O(nd)·L_l`) so the
/// ratio isolates the ciphertext term the formulas describe.
fn ciphertext_comm(row: &crate::config::FigureRow) -> f64 {
    // n·d locations of 16B plus n scalar headers, in KB.
    let location_kb = (8.0 * 25.0 * 16.0 + 8.0 * 4.0) / 1024.0;
    (row.comm_kb - location_kb).max(1e-9)
}

/// One Table 4 row: an approach and its *verified* privacy properties.
/// `privacy4` is `None` for the single-user rows where Privacy IV does
/// not apply (the paper's "–").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivacyCheckRow {
    pub approach: String,
    pub privacy1: bool,
    pub privacy2: bool,
    pub privacy3: bool,
    pub privacy4: Option<bool>,
    /// How the decisive property was verified (attack/check + outcome).
    pub evidence: String,
}

/// Table 4 (group-query rows): verify the privacy matrix by *running the
/// attacks*. For PPGNN the inequality attack must fail after sanitation;
/// for IPPF/GLP the concrete attacks must succeed.
pub fn table4(cfg: &ExperimentConfig) -> Vec<PrivacyCheckRow> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7AB4);
    let pois = database(cfg);
    let theta0 = 0.05;
    let n = 4;
    let attack_samples = 20_000;

    // --- PPGNN (with sanitation): run real queries, then attack them.
    let ppgnn_cfg = PpgnnConfig {
        keysize: cfg.keysize,
        theta0,
        variant: Variant::Plain,
        ..PpgnnConfig::paper_defaults()
    };
    let lsp = Lsp::new(pois.clone(), ppgnn_cfg);
    let keys = generate_keypair(cfg.keysize, &mut rng);
    let mut workload = Workload::unit(cfg.seed ^ 0x7AB5);
    let mut ppgnn_exposed = 0usize;
    let trials = 5usize;
    for _ in 0..trials {
        let users = workload.next_group(n);
        let run =
            run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).expect("table4 PPGNN run");
        let answer_pois: Vec<ppgnn_geo::Poi> = run
            .answer
            .iter()
            .enumerate()
            .map(|(i, p)| ppgnn_geo::Poi::new(i as u32, *p))
            .collect();
        for target in 0..n {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let theta = feasible_region_fraction(
                &answer_pois,
                &colluders,
                Aggregate::Sum,
                &Rect::UNIT,
                attack_samples,
                &mut rng,
            );
            if theta <= theta0 {
                ppgnn_exposed += 1;
            }
        }
    }
    let ppgnn_p4 = ppgnn_exposed == 0;

    // --- IPPF: the chain attack recovers a victim exactly.
    let victim = Point::new(0.37, 0.58);
    let chain_candidates: Vec<(Point, f64)> = [
        Point::new(0.1, 0.1),
        Point::new(0.9, 0.2),
        Point::new(0.5, 0.9),
    ]
    .iter()
    .map(|p| (*p, p.dist(&victim)))
    .collect();
    let ippf_recovered = ippf_chain_attack(&chain_candidates)
        .map(|r| r.dist(&victim) < 1e-6)
        .unwrap_or(false);

    // --- GLP: the centroid attack recovers a victim exactly.
    let glp_users = workload.next_group(n);
    let centroid = Point::centroid(&glp_users);
    let glp_recovered = glp_centroid_attack(centroid, &glp_users[1..]).dist(&glp_users[0]) < 1e-9;

    vec![
        PrivacyCheckRow {
            approach: "PPGNN".into(),
            privacy1: true, // structural: d-anonymity of location sets
            privacy2: true, // structural: δ' candidates + private selection
            privacy3: true, // structural: only the selected column decrypts
            privacy4: Some(ppgnn_p4),
            evidence: format!(
                "inequality attack on {} (answer,target) pairs exposed {} (θ0 = {theta0})",
                trials * n,
                ppgnn_exposed
            ),
        },
        PrivacyCheckRow {
            approach: "IPPF".into(),
            privacy1: true,
            privacy2: true,
            privacy3: false, // candidate superset reaches the users
            privacy4: Some(!ippf_recovered),
            evidence: format!("chain attack recovered the victim exactly: {ippf_recovered}"),
        },
        PrivacyCheckRow {
            approach: "GLP".into(),
            privacy1: true,
            privacy2: false, // LSP sees the centroid and the answer
            privacy3: true,
            privacy4: Some(!glp_recovered),
            evidence: format!("centroid attack recovered the victim exactly: {glp_recovered}"),
        },
    ]
}

/// Table 4 (single-user rows, `n = 1`): one representative per
/// related-work family, with Privacy III *measured* (did more than `k`
/// POIs reach the user?) and Privacy II decided structurally (does the
/// LSP learn the answer it served?).
pub fn table4_single(cfg: &ExperimentConfig) -> Vec<PrivacyCheckRow> {
    use ppgnn_baselines::{Apnn, CloakRegionKnn, DummyKnn, PerturbationKnn, PirKnn};
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x514);
    let pois = database(cfg);
    let k = 8;
    let user = Point::new(0.41, 0.63);
    let keys = generate_keypair(cfg.keysize, &mut rng);

    let cr = CloakRegionKnn::new(pois.clone()).query(user, k, 0.01, &mut rng);
    let cr_leak = cr.report.counters["candidate_pois"] > k as u64;

    let dk = DummyKnn::new(pois.clone()).query(user, k, 25, &mut rng);
    let dk_leak = dk.report.counters["returned_pois"] > k as u64;

    let pir = PirKnn::build(pois.clone(), 20, cfg.keysize);
    let pir_run = pir.query(user, k, &keys, &mut rng);
    let pir_leak = pir_run.report.counters["returned_pois"] > k as u64;

    let pert = PerturbationKnn::new(pois.clone()).query(user, k, 5.0, &mut rng);
    let pert_exact_count = pert.answer.len() == k;

    let apnn = Apnn::build(pois.clone(), 50, k, cfg.keysize);
    let apnn_run = apnn.query(user, k, 5, &keys, &mut rng);
    let apnn_exact_count = apnn_run.answer.len() == k;

    vec![
        PrivacyCheckRow {
            approach: "CloakRegion".into(),
            privacy1: true,
            privacy2: true,
            privacy3: !cr_leak,
            privacy4: None,
            evidence: format!(
                "{} candidate POIs reached the user (k = {k})",
                cr.report.counters["candidate_pois"]
            ),
        },
        PrivacyCheckRow {
            approach: "Dummy".into(),
            privacy1: true,
            privacy2: true,
            privacy3: !dk_leak,
            privacy4: None,
            evidence: format!(
                "{} POIs returned for d = 25 dummy queries",
                dk.report.counters["returned_pois"]
            ),
        },
        PrivacyCheckRow {
            approach: "PIR".into(),
            privacy1: true,
            privacy2: true,
            privacy3: !pir_leak,
            privacy4: None,
            evidence: format!(
                "bucket of {} records retrieved per query",
                pir_run.report.counters["returned_pois"]
            ),
        },
        PrivacyCheckRow {
            approach: "Perturbation".into(),
            privacy1: true,
            privacy2: false, // LSP computes the answer in the clear
            privacy3: pert_exact_count,
            privacy4: None,
            evidence: "LSP sees the (noised) query and its answer".into(),
        },
        PrivacyCheckRow {
            approach: "Hybrid/APNN".into(),
            privacy1: true,
            privacy2: true,
            privacy3: apnn_exact_count,
            privacy4: None,
            evidence: "private selection returns exactly one pre-computed answer".into(),
        },
    ]
}

/// Renders Table 2 rows.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = format!(
        "## Table 2 — asymptotic verification\n{:<38} {:>14} {:>10} {:>10} {:>10}\n",
        "component", "formula", "δ'-ratio", "measured", "predicted"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<38} {:>14} {:>10.2} {:>10.2} {:>10.2}\n",
            r.component, r.formula, r.delta_ratio, r.measured_ratio, r.predicted_ratio
        ));
    }
    out
}

/// Renders Table 4 rows.
pub fn render_table4(rows: &[PrivacyCheckRow]) -> String {
    let tick = |b: bool| if b { "yes" } else { "NO" };
    let tick4 = |b: Option<bool>| match b {
        Some(v) => tick(v),
        None => "-",
    };
    let mut out = format!(
        "## Table 4 — verified privacy matrix\n{:<14} {:>4} {:>4} {:>5} {:>4}  evidence\n",
        "approach", "P-I", "P-II", "P-III", "P-IV"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>4} {:>4} {:>5} {:>4}  {}\n",
            r.approach,
            tick(r.privacy1),
            tick(r.privacy2),
            tick(r.privacy3),
            tick4(r.privacy4),
            r.evidence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_matrix() {
        let cfg = ExperimentConfig {
            db_size: 2_000,
            queries: 1,
            keysize: 128,
            seed: 11,
        };
        let rows = table4(&cfg);
        let by_name = |n: &str| rows.iter().find(|r| r.approach == n).unwrap();
        let ppgnn = by_name("PPGNN");
        assert!(ppgnn.privacy1 && ppgnn.privacy2 && ppgnn.privacy3);
        assert_eq!(ppgnn.privacy4, Some(true));
        let ippf = by_name("IPPF");
        assert!(ippf.privacy1 && ippf.privacy2 && !ippf.privacy3);
        assert_eq!(ippf.privacy4, Some(false));
        let glp = by_name("GLP");
        assert!(glp.privacy1 && !glp.privacy2 && glp.privacy3);
        assert_eq!(glp.privacy4, Some(false));
    }

    #[test]
    fn table4_single_matches_paper_matrix() {
        let cfg = ExperimentConfig {
            db_size: 2_000,
            queries: 1,
            keysize: 128,
            seed: 12,
        };
        let rows = table4_single(&cfg);
        let by_name = |n: &str| rows.iter().find(|r| r.approach == n).unwrap();
        for name in ["CloakRegion", "Dummy", "PIR"] {
            let r = by_name(name);
            assert!(r.privacy1 && r.privacy2 && !r.privacy3, "{name}");
            assert_eq!(r.privacy4, None);
        }
        let pert = by_name("Perturbation");
        assert!(pert.privacy1 && !pert.privacy2 && pert.privacy3);
        let hybrid = by_name("Hybrid/APNN");
        assert!(hybrid.privacy1 && hybrid.privacy2 && hybrid.privacy3);
    }

    #[test]
    fn renders_contain_labels() {
        let rows = vec![Table2Row {
            component: "x".into(),
            formula: "O(δ')".into(),
            delta_ratio: 4.0,
            measured_ratio: 3.9,
            predicted_ratio: 4.0,
        }];
        assert!(render_table2(&rows).contains("O(δ')"));
        let prows = vec![PrivacyCheckRow {
            approach: "GLP".into(),
            privacy1: true,
            privacy2: false,
            privacy3: true,
            privacy4: Some(false),
            evidence: "e".into(),
        }];
        let s = render_table4(&prows);
        assert!(s.contains("GLP") && s.contains("NO"));
    }
}
