//! Private-selection benchmarks: Theorem 3.1's `A ⨂ [v]` versus the
//! §6 two-phase selection, across δ′ — the LSP-side cost trade-off the
//! paper analyzes at the end of §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_bigint::{BigUint, UniformBigUint};
use ppgnn_core::opt_split;
use ppgnn_paillier::{
    generate_keypair, matrix_select_with, DjContext, Encryptor, FreshEncryptor, SelectOptions,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (pk, _sk) = generate_keypair(256, &mut rng);
    let ctx1 = DjContext::new(&pk, 1);
    let ctx2 = DjContext::new(&pk, 2);
    let m = 2; // answer column height

    for delta_prime in [25usize, 100] {
        // Answer matrix with plausible payloads (< N).
        let columns: Vec<Vec<BigUint>> = (0..delta_prime)
            .map(|_| (0..m).map(|_| rng.gen_biguint(200)).collect())
            .collect();

        let mut group = c.benchmark_group(format!("selection/dp{delta_prime}"));
        group.sample_size(10);

        let enc1 = FreshEncryptor::seeded(ctx1.clone(), 3);
        let enc2 = FreshEncryptor::seeded(ctx2.clone(), 4);
        let plain_ind = enc1
            .encrypt_indicator(delta_prime, delta_prime / 2)
            .unwrap();
        for (label, opts) in [
            ("single_phase_naive", SelectOptions::naive()),
            ("single_phase_straus", SelectOptions::default()),
            (
                "single_phase_straus_par4",
                SelectOptions {
                    parallelism: 4,
                    ..SelectOptions::default()
                },
            ),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| matrix_select_with(&columns, &plain_ind, &ctx1, &opts).unwrap());
            });
        }

        let (omega, block) = opt_split(delta_prime);
        let inner = enc1.encrypt_indicator(block, 1).unwrap();
        let outer = enc2.encrypt_indicator(omega, omega / 2).unwrap();
        group.bench_function("two_phase", |b| {
            let opts = SelectOptions::default();
            b.iter(|| {
                let mut padded = columns.clone();
                padded.resize(block * omega, vec![BigUint::zero(); m]);
                let blocks: Vec<_> = (0..omega)
                    .map(|bi| {
                        matrix_select_with(
                            &padded[bi * block..(bi + 1) * block],
                            &inner,
                            &ctx1,
                            &opts,
                        )
                        .unwrap()
                    })
                    .collect();
                let cols2: Vec<Vec<BigUint>> = blocks
                    .iter()
                    .map(|bl| bl.elements().iter().map(|c| c.as_plaintext()).collect())
                    .collect();
                matrix_select_with(&cols2, &outer, &ctx2, &opts).unwrap()
            });
        });
        group.finish();
    }
}

fn bench_indicator_encryption(c: &mut Criterion) {
    // The user-side cost the OPT split reduces: δ′ ε₁ encryptions vs
    // (δ′/ω) ε₁ + ω ε₂ encryptions.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let (pk, _sk) = generate_keypair(256, &mut rng);
    let ctx1 = DjContext::new(&pk, 1);
    let ctx2 = DjContext::new(&pk, 2);
    let mut group = c.benchmark_group("indicator");
    group.sample_size(10);
    for delta_prime in [25usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("plain", delta_prime),
            &delta_prime,
            |b, &dp| {
                let enc1 = FreshEncryptor::seeded(ctx1.clone(), 7);
                b.iter(|| enc1.encrypt_indicator(dp, dp / 2).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("two_phase", delta_prime),
            &delta_prime,
            |b, &dp| {
                let (omega, block) = opt_split(dp);
                let enc1 = FreshEncryptor::seeded(ctx1.clone(), 8);
                let enc2 = FreshEncryptor::seeded(ctx2.clone(), 9);
                b.iter(|| {
                    (
                        enc1.encrypt_indicator(block, 0).unwrap(),
                        enc2.encrypt_indicator(omega, 0).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_indicator_encryption);
criterion_main!(benches);
