//! Private-selection benchmarks: Theorem 3.1's `A ⨂ [v]` versus the
//! §6 two-phase selection, across δ′ — the LSP-side cost trade-off the
//! paper analyzes at the end of §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_bigint::{BigUint, UniformBigUint};
use ppgnn_core::opt_split;
use ppgnn_paillier::{encrypt_indicator, generate_keypair, matrix_select, DjContext};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_selection(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (pk, _sk) = generate_keypair(256, &mut rng);
    let ctx1 = DjContext::new(&pk, 1);
    let ctx2 = DjContext::new(&pk, 2);
    let m = 2; // answer column height

    for delta_prime in [25usize, 100] {
        // Answer matrix with plausible payloads (< N).
        let columns: Vec<Vec<BigUint>> = (0..delta_prime)
            .map(|_| (0..m).map(|_| rng.gen_biguint(200)).collect())
            .collect();

        let mut group = c.benchmark_group(format!("selection/dp{delta_prime}"));
        group.sample_size(10);

        let plain_ind = encrypt_indicator(delta_prime, delta_prime / 2, &ctx1, &mut rng);
        group.bench_function("single_phase", |b| {
            b.iter(|| matrix_select(&columns, &plain_ind, &ctx1).unwrap());
        });

        let (omega, block) = opt_split(delta_prime);
        let inner = encrypt_indicator(block, 1, &ctx1, &mut rng);
        let outer = encrypt_indicator(omega, omega / 2, &ctx2, &mut rng);
        group.bench_function("two_phase", |b| {
            b.iter(|| {
                let mut padded = columns.clone();
                padded.resize(block * omega, vec![BigUint::zero(); m]);
                let blocks: Vec<_> = (0..omega)
                    .map(|bi| {
                        matrix_select(&padded[bi * block..(bi + 1) * block], &inner, &ctx1).unwrap()
                    })
                    .collect();
                let rows: Vec<_> = (0..m)
                    .map(|r| {
                        let x: Vec<BigUint> = blocks
                            .iter()
                            .map(|bl| bl.elements()[r].as_plaintext())
                            .collect();
                        outer.dot(&x, &ctx2).unwrap()
                    })
                    .collect();
                rows
            });
        });
        group.finish();
    }
}

fn bench_indicator_encryption(c: &mut Criterion) {
    // The user-side cost the OPT split reduces: δ′ ε₁ encryptions vs
    // (δ′/ω) ε₁ + ω ε₂ encryptions.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let (pk, _sk) = generate_keypair(256, &mut rng);
    let ctx1 = DjContext::new(&pk, 1);
    let ctx2 = DjContext::new(&pk, 2);
    let mut group = c.benchmark_group("indicator");
    group.sample_size(10);
    for delta_prime in [25usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("plain", delta_prime),
            &delta_prime,
            |b, &dp| {
                b.iter(|| encrypt_indicator(dp, dp / 2, &ctx1, &mut rng));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("two_phase", delta_prime),
            &delta_prime,
            |b, &dp| {
                let (omega, block) = opt_split(dp);
                b.iter(|| {
                    (
                        encrypt_indicator(block, 0, &ctx1, &mut rng),
                        encrypt_indicator(omega, 0, &ctx2, &mut rng),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_indicator_encryption);
criterion_main!(benches);
