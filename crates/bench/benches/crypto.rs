//! Micro-benchmarks of the cryptographic substrate: the `C_e` unit cost
//! of Table 2's formulas (encryption, decryption, homomorphic ops) at
//! ε₁ and ε₂, plus the underlying modular exponentiation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_bigint::{BigUint, UniformBigUint};
use ppgnn_paillier::{generate_keypair, DjContext, Encryptor, FreshEncryptor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_paillier_ops(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for keysize in [256usize, 512] {
        let (pk, sk) = generate_keypair(keysize, &mut rng);
        for s in [1usize, 2] {
            let ctx = DjContext::new(&pk, s);
            let enc = FreshEncryptor::seeded(ctx.clone(), 5);
            let m = rng.gen_biguint_below(ctx.plaintext_modulus());
            let ct = enc.encrypt(&m).unwrap();
            let scalar = rng.gen_biguint(keysize - 17);

            let mut group = c.benchmark_group(format!("paillier/{keysize}b/eps{s}"));
            group.sample_size(20);
            group.bench_function("encrypt", |b| {
                b.iter(|| enc.encrypt(&m).unwrap());
            });
            {
                use ppgnn_paillier::{PooledEncryptor, RandomizerPool};
                use std::sync::Arc;
                let pool = Arc::new(RandomizerPool::prefilled(&ctx, 4096, &mut rng));
                let pooled = PooledEncryptor::seeded(pool, 6);
                group.bench_function("encrypt_pooled", |b| {
                    b.iter(|| pooled.encrypt(&m).unwrap());
                });
            }
            group.bench_function("decrypt", |b| {
                b.iter(|| ctx.decrypt(&ct, &sk));
            });
            group.bench_function("scalar_mul", |b| {
                b.iter(|| ctx.scalar_mul(&scalar, &ct));
            });
            group.bench_function("add", |b| {
                b.iter(|| ctx.add(&ct, &ct));
            });
            group.finish();
        }
    }
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut group = c.benchmark_group("bigint/modpow");
    group.sample_size(30);
    for bits in [512usize, 1024, 2048] {
        let mut modulus = rng.gen_biguint(bits);
        modulus.set_bit(bits - 1, true);
        modulus.set_bit(0, true);
        let base = rng.gen_biguint(bits - 1);
        let exp = rng.gen_biguint(bits / 2);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| base.modpow(&exp, &modulus));
        });
    }
    group.finish();
}

fn bench_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier/keygen");
    group.sample_size(10);
    for keysize in [256usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(keysize), &keysize, |b, &ks| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| generate_keypair(ks, &mut rng));
        });
    }
    group.finish();
}

fn bench_mul_div(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut group = c.benchmark_group("bigint");
    for limbs in [16usize, 64] {
        let a = BigUint::from_limbs((0..limbs).map(|_| rand::Rng::gen(&mut rng)).collect());
        let b_ = BigUint::from_limbs((0..limbs).map(|_| rand::Rng::gen(&mut rng)).collect());
        group.bench_with_input(BenchmarkId::new("mul", limbs), &limbs, |bch, _| {
            bch.iter(|| &a * &b_);
        });
        let prod = &a * &b_;
        group.bench_with_input(BenchmarkId::new("div_rem", limbs), &limbs, |bch, _| {
            bch.iter(|| prod.div_rem(&b_));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_paillier_ops,
    bench_modpow,
    bench_keygen,
    bench_mul_div
);
criterion_main!(benches);
