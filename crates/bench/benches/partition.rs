//! Partition-parameter solver benchmarks: the Eqn 7–10 MINLP instances
//! the paper delegates to Bonmin, solved exactly here. These run once
//! per query configuration, so single-digit milliseconds suffice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_core::partition::solve_partition;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/solve");
    // The paper's whole experimental grid (§8.3): n ∈ [2,32], d ∈ [5,50],
    // δ ∈ [25,200].
    for (n, d, delta) in [
        (2usize, 25usize, 100usize),
        (8, 25, 100),
        (32, 25, 100),
        (8, 5, 25),
        (8, 50, 200),
        (32, 50, 200),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}_delta{delta}")),
            &(n, d, delta),
            |b, &(n, d, delta)| {
                b.iter(|| solve_partition(n, d, delta).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
