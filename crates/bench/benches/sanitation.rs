//! Answer-sanitation benchmarks: the `C_s` unit of Table 2, across θ₀
//! (which drives the sample size of Eqn 17 — the Figure 6l effect) and
//! across the group size n (the Figure 6i linear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_core::params::HypothesisConfig;
use ppgnn_core::sanitize::Sanitizer;
use ppgnn_datagen::{sequoia_like, Workload};
use ppgnn_geo::{group_knn_brute_force, Aggregate, Rect};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_theta0(c: &mut Criterion) {
    let pois = sequoia_like(20_000, 1);
    let users = Workload::unit(2).next_group(8);
    let answer = group_knn_brute_force(&pois, &users, 8, Aggregate::Sum);
    let hyp = HypothesisConfig::default();

    let mut group = c.benchmark_group("sanitation/theta0");
    group.sample_size(10);
    for theta0 in [0.01f64, 0.05, 0.1] {
        let sanitizer = Sanitizer::new(theta0, &hyp, Rect::UNIT);
        group.bench_with_input(BenchmarkId::from_parameter(theta0), &theta0, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| sanitizer.safe_prefix_len(&answer, &users, Aggregate::Sum, &mut rng));
        });
    }
    group.finish();
}

fn bench_group_size(c: &mut Criterion) {
    let pois = sequoia_like(20_000, 1);
    let hyp = HypothesisConfig::default();
    let sanitizer = Sanitizer::new(0.05, &hyp, Rect::UNIT);

    let mut group = c.benchmark_group("sanitation/n");
    group.sample_size(10);
    for n in [2usize, 8, 32] {
        let users = Workload::unit(n as u64).next_group(n);
        let answer = group_knn_brute_force(&pois, &users, 8, Aggregate::Sum);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| sanitizer.safe_prefix_len(&answer, &users, Aggregate::Sum, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theta0, bench_group_size);
criterion_main!(benches);
