//! Whole-protocol benchmarks: one end-to-end query per variant at a
//! reduced key size (the sweep harness in `src/bin/figures.rs` covers
//! the full parameter grid; this is the per-variant unit cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_core::{run_ppgnn_with_keys, Lsp, PpgnnConfig, Variant};
use ppgnn_datagen::{sequoia_like, Workload};
use ppgnn_paillier::generate_keypair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_variants(c: &mut Criterion) {
    let pois = sequoia_like(20_000, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let keys = generate_keypair(256, &mut rng);
    let users = Workload::unit(9).next_group(8);

    let mut group = c.benchmark_group("protocol/n8_k8_d25_delta100");
    group.sample_size(10);
    for variant in [Variant::Plain, Variant::Opt, Variant::Naive] {
        let cfg = PpgnnConfig {
            keysize: 256,
            variant,
            ..PpgnnConfig::paper_defaults()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, _| {
                b.iter(|| run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_sanitation_toggle(c: &mut Criterion) {
    // PPGNN vs PPGNN-NAS: the LSP-side price of Privacy IV (Figure 8c/f).
    let pois = sequoia_like(20_000, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let keys = generate_keypair(256, &mut rng);
    let users = Workload::unit(10).next_group(8);

    let mut group = c.benchmark_group("protocol/sanitation");
    group.sample_size(10);
    for (name, sanitize) in [("PPGNN", true), ("PPGNN-NAS", false)] {
        let cfg = PpgnnConfig {
            keysize: 256,
            sanitize,
            ..PpgnnConfig::paper_defaults()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        group.bench_function(name, |b| {
            b.iter(|| run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_sanitation_toggle);
criterion_main!(benches);
