//! Spatial-substrate benchmarks: the `C_q` unit of Table 2 (one MBM kGNN
//! query) on the paper-scale dataset, against the brute-force oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_datagen::{sequoia_like, Workload, SEQUOIA_SIZE};
use ppgnn_geo::{group_knn_brute_force, Aggregate, RTree};

fn bench_gnn(c: &mut Criterion) {
    let pois = sequoia_like(SEQUOIA_SIZE, 1);
    let tree = RTree::bulk_load(pois.clone());
    let mut workload = Workload::unit(2);

    let mut group = c.benchmark_group("gnn/62556pois");
    group.sample_size(20);
    for n in [1usize, 8, 32] {
        let queries = workload.next_group(n);
        group.bench_with_input(BenchmarkId::new("mbm", n), &n, |b, _| {
            b.iter(|| tree.group_knn(&queries, 8, Aggregate::Sum));
        });
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| group_knn_brute_force(&pois, &queries, 8, Aggregate::Sum));
        });
    }
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let pois = sequoia_like(SEQUOIA_SIZE, 1);
    let tree = RTree::bulk_load(pois);
    let queries = Workload::unit(3).next_group(8);
    let mut group = c.benchmark_group("gnn/aggregates");
    group.sample_size(20);
    for agg in Aggregate::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(agg), &agg, |b, &agg| {
            b.iter(|| tree.group_knn(&queries, 8, agg));
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree/bulk_load");
    group.sample_size(10);
    for size in [10_000usize, SEQUOIA_SIZE] {
        let pois = sequoia_like(size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| RTree::bulk_load(pois.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gnn, bench_aggregates, bench_bulk_load);
criterion_main!(benches);
