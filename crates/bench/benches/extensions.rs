//! Benchmarks for the extension subsystems: dynamic updates, road-network
//! distances, quasi-Monte-Carlo sanitation, and the CRT decryptor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgnn_bigint::BigUint;
use ppgnn_core::params::HypothesisConfig;
use ppgnn_core::sanitize::{SamplerKind, Sanitizer};
use ppgnn_datagen::{sequoia_like, Workload};
use ppgnn_geo::{group_knn_brute_force, Aggregate, DynamicRTree, Poi, Point, Rect, RoadNetwork};
use ppgnn_paillier::{generate_keypair, Decryptor, DjContext};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_dynamic_updates(c: &mut Criterion) {
    let pois = sequoia_like(62_556, 1);
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(20);
    group.bench_function("insert_amortized", |b| {
        let mut tree = DynamicRTree::new(pois.clone());
        let mut i = 0u32;
        b.iter(|| {
            tree.insert(Poi::new(1_000_000 + i, Point::new(0.5, 0.5)));
            i += 1;
        });
    });
    group.bench_function("query_with_dirty_buffer", |b| {
        let mut tree = DynamicRTree::new(pois.clone());
        for i in 0..500 {
            tree.insert(Poi::new(1_000_000 + i, Point::new(0.3, 0.7)));
        }
        let q = Workload::unit(2).next_group(8);
        b.iter(|| tree.group_knn(&q, 8, Aggregate::Sum));
    });
    group.finish();
}

fn bench_roadnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("roadnet");
    group.sample_size(20);
    for side in [20usize, 50] {
        let net = RoadNetwork::grid(side, side, 0.01, 3);
        group.bench_with_input(BenchmarkId::new("sssp", side * side), &side, |b, _| {
            b.iter(|| net.sssp(0));
        });
    }
    let net = RoadNetwork::grid(30, 30, 0.01, 3);
    let pois = sequoia_like(5_000, 5);
    let q = Workload::unit(4).next_group(8);
    group.bench_function("group_knn_5000pois_n8", |b| {
        b.iter(|| net.group_knn(&pois, &q, 8, Aggregate::Sum));
    });
    group.finish();
}

fn bench_sampler_kinds(c: &mut Criterion) {
    let pois = sequoia_like(20_000, 1);
    let users = Workload::unit(7).next_group(8);
    let answer = group_knn_brute_force(&pois, &users, 8, Aggregate::Sum);
    let hyp = HypothesisConfig::default();
    let mut group = c.benchmark_group("sanitation/sampler");
    group.sample_size(10);
    for (name, kind) in [
        ("pseudo", SamplerKind::Pseudo),
        ("halton", SamplerKind::Halton),
    ] {
        let sanitizer = Sanitizer::new(0.05, &hyp, Rect::UNIT).with_sampler(kind);
        group.bench_function(name, |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            b.iter(|| sanitizer.safe_prefix_len(&answer, &users, Aggregate::Sum, &mut rng));
        });
    }
    group.finish();
}

fn bench_crt_decryptor(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let (pk, sk) = generate_keypair(512, &mut rng);
    let ctx = DjContext::new(&pk, 1);
    let dec = Decryptor::new(&ctx, &sk);
    let ct = ppgnn_paillier::Encryptor::encrypt(
        &ppgnn_paillier::FreshEncryptor::seeded(ctx.clone(), 5),
        &BigUint::from(424242u64),
    )
    .unwrap();
    let mut group = c.benchmark_group("paillier/512b/decrypt");
    group.sample_size(20);
    group.bench_function("plain", |b| b.iter(|| ctx.decrypt(&ct, &sk)));
    group.bench_function("crt", |b| b.iter(|| dec.decrypt(&ctx, &ct)));
    group.finish();
}

criterion_group!(
    benches,
    bench_dynamic_updates,
    bench_roadnet,
    bench_sampler_kinds,
    bench_crt_decryptor
);
criterion_main!(benches);
