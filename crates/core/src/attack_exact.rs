//! Exact feasible-region computation for the single-user sum/max/min
//! case.
//!
//! With `n = 1` (or colluders absent) each inequality `dis(p_i, x) ≤
//! dis(p_{i+1}, x)` is the half-plane on `p_i`'s side of the
//! perpendicular bisector of `(p_i, p_{i+1})`. The feasible region is
//! the data-space rectangle clipped by `k − 1` half-planes — a convex
//! polygon whose area we compute exactly (Sutherland–Hodgman clipping +
//! the shoelace formula).
//!
//! This gives the §5.3 statistic `θ` *without sampling*, and the tests
//! cross-validate the Monte-Carlo estimator against it — evidence that
//! the Z-test machinery measures the right quantity.

use ppgnn_geo::{Poi, Point, Rect};

/// A half-plane `a·x + b·y ≤ c`.
#[derive(Debug, Clone, Copy)]
pub struct HalfPlane {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl HalfPlane {
    /// The half-plane of points at least as close to `p` as to `q`
    /// (`dis(p, x) ≤ dis(q, x)`): the bisector constraint
    /// `2(q−p)·x ≤ |q|² − |p|²`.
    pub fn closer_to(p: &Point, q: &Point) -> Self {
        HalfPlane {
            a: 2.0 * (q.x - p.x),
            b: 2.0 * (q.y - p.y),
            c: (q.x * q.x + q.y * q.y) - (p.x * p.x + p.y * p.y),
        }
    }

    /// Signed slack: ≥ 0 inside.
    fn slack(&self, v: &Point) -> f64 {
        self.c - (self.a * v.x + self.b * v.y)
    }
}

/// Clips a convex polygon by one half-plane (Sutherland–Hodgman).
fn clip(polygon: &[Point], hp: &HalfPlane) -> Vec<Point> {
    let mut out = Vec::with_capacity(polygon.len() + 1);
    let n = polygon.len();
    for i in 0..n {
        let cur = polygon[i];
        let next = polygon[(i + 1) % n];
        let s_cur = hp.slack(&cur);
        let s_next = hp.slack(&next);
        if s_cur >= 0.0 {
            out.push(cur);
        }
        if (s_cur > 0.0) != (s_next > 0.0) && (s_cur - s_next).abs() > f64::EPSILON {
            // The edge crosses the boundary: add the intersection.
            let t = s_cur / (s_cur - s_next);
            out.push(Point::new(
                cur.x + t * (next.x - cur.x),
                cur.y + t * (next.y - cur.y),
            ));
        }
    }
    out
}

/// Area of a simple polygon (shoelace formula).
fn polygon_area(polygon: &[Point]) -> f64 {
    if polygon.len() < 3 {
        return 0.0;
    }
    let n = polygon.len();
    let mut twice = 0.0;
    for i in 0..n {
        let p = polygon[i];
        let q = polygon[(i + 1) % n];
        twice += p.x * q.y - q.x * p.y;
    }
    twice.abs() / 2.0
}

/// The exact feasible region of a ranked single-user answer: the set of
/// locations `x` consistent with `dis(p_1, x) ≤ … ≤ dis(p_t, x)`,
/// clipped to `space`. Returns the polygon (possibly empty).
pub fn exact_feasible_polygon(answer: &[Poi], space: &Rect) -> Vec<Point> {
    let mut polygon = vec![
        Point::new(space.min_x, space.min_y),
        Point::new(space.max_x, space.min_y),
        Point::new(space.max_x, space.max_y),
        Point::new(space.min_x, space.max_y),
    ];
    for pair in answer.windows(2) {
        let hp = HalfPlane::closer_to(&pair[0].location, &pair[1].location);
        polygon = clip(&polygon, &hp);
        if polygon.is_empty() {
            break;
        }
    }
    polygon
}

/// The exact `θ`: feasible area as a fraction of the space.
pub fn exact_feasible_fraction(answer: &[Poi], space: &Rect) -> f64 {
    polygon_area(&exact_feasible_polygon(answer, space)) / space.area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::feasible_region_fraction;
    use ppgnn_geo::Aggregate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_poi_is_whole_space() {
        let answer = [Poi::new(0, Point::new(0.5, 0.5))];
        assert_eq!(exact_feasible_fraction(&answer, &Rect::UNIT), 1.0);
    }

    #[test]
    fn mirrored_pair_is_exactly_half() {
        let answer = [
            Poi::new(0, Point::new(0.25, 0.5)),
            Poi::new(1, Point::new(0.75, 0.5)),
        ];
        let theta = exact_feasible_fraction(&answer, &Rect::UNIT);
        assert!(
            (theta - 0.5).abs() < 1e-12,
            "bisector splits the square: {theta}"
        );
    }

    #[test]
    fn diagonal_pair_half_by_symmetry() {
        let answer = [
            Poi::new(0, Point::new(0.2, 0.2)),
            Poi::new(1, Point::new(0.8, 0.8)),
        ];
        let theta = exact_feasible_fraction(&answer, &Rect::UNIT);
        assert!((theta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_corners_quarter() {
        // p1 at a corner, p2 and p3 at adjacent corners: x must be closer
        // to p1 than both ⇒ the quarter square at p1... with the chain
        // constraint dis(p2,x) ≤ dis(p3,x) halving further depends on
        // geometry; verify the chain p1 ≤ p2 ≤ p3 on collinear points.
        let answer = [
            Poi::new(0, Point::new(0.0, 0.5)),
            Poi::new(1, Point::new(0.5, 0.5)),
            Poi::new(2, Point::new(1.0, 0.5)),
        ];
        // x-coordinate must satisfy x ≤ 0.25 (bisector of 0 and 0.5) and
        // x ≤ 0.75; area = 0.25.
        let theta = exact_feasible_fraction(&answer, &Rect::UNIT);
        assert!((theta - 0.25).abs() < 1e-12, "{theta}");
    }

    #[test]
    fn infeasible_ranking_gives_zero() {
        // dis(p1,x) ≤ dis(p2,x) ≤ dis(p1,x) with p1 ≠ p2 forces the
        // bisector line only (measure zero).
        let answer = [
            Poi::new(0, Point::new(0.2, 0.5)),
            Poi::new(1, Point::new(0.8, 0.5)),
            Poi::new(2, Point::new(0.2, 0.5)),
        ];
        let theta = exact_feasible_fraction(&answer, &Rect::UNIT);
        assert!(theta < 1e-12);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        // The §5.3 sampler must estimate the exact area within a few
        // percentage points — this validates the whole Z-test machinery.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for seed in 0..5u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let answer: Vec<Poi> = (0..5)
                .map(|i| {
                    Poi::new(
                        i,
                        Point::new(rand::Rng::gen(&mut gen), rand::Rng::gen(&mut gen)),
                    )
                })
                .collect();
            // Rank consistently with some true location so the region is
            // non-degenerate.
            let target = Point::new(rand::Rng::gen(&mut gen), rand::Rng::gen(&mut gen));
            let mut ranked = answer;
            ranked.sort_by(|a, b| {
                a.location
                    .dist(&target)
                    .total_cmp(&b.location.dist(&target))
            });
            let exact = exact_feasible_fraction(&ranked, &Rect::UNIT);
            let mc = feasible_region_fraction(
                &ranked,
                &[],
                Aggregate::Sum,
                &Rect::UNIT,
                40_000,
                &mut rng,
            );
            assert!(
                (mc - exact).abs() < 0.02,
                "seed {seed}: exact {exact} vs MC {mc}"
            );
        }
    }

    #[test]
    fn region_shrinks_monotonically_with_prefix() {
        let answer: Vec<Poi> = [(0.1, 0.2), (0.9, 0.4), (0.3, 0.8), (0.6, 0.1), (0.5, 0.5)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Poi::new(i as u32, Point::new(x, y)))
            .collect();
        let mut prev = 1.0;
        for t in 1..=answer.len() {
            let theta = exact_feasible_fraction(&answer[..t], &Rect::UNIT);
            assert!(theta <= prev + 1e-12, "prefix {t} grew: {theta} > {prev}");
            prev = theta;
        }
    }

    #[test]
    fn polygon_is_convex_subset_of_space() {
        let answer = [
            Poi::new(0, Point::new(0.4, 0.3)),
            Poi::new(1, Point::new(0.7, 0.9)),
            Poi::new(2, Point::new(0.1, 0.8)),
        ];
        let poly = exact_feasible_polygon(&answer, &Rect::UNIT);
        for v in &poly {
            assert!(
                v.x >= -1e-9 && v.x <= 1.0 + 1e-9 && v.y >= -1e-9 && v.y <= 1.0 + 1e-9,
                "vertex escaped the space: {v:?}"
            );
        }
    }
}
