//! Statistics for the §5.3 hypothesis test: the standard-normal quantile
//! function, the Z-test decision rule (Eqn 16) and the Fleiss sample-size
//! formula (Eqn 17 / Theorem 5.1).

/// Standard-normal quantile `Φ⁻¹(p)` (a.k.a. probit), by Acklam's rational
/// approximation — absolute error below 1.15e-9 over (0, 1).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile argument must lie in (0,1), got {p}"
    );

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Critical value `z_γ` for an upper-tail test at level `γ`
/// (e.g. `z_{0.05} ≈ 1.645`).
pub fn z_critical(gamma: f64) -> f64 {
    normal_quantile(1.0 - gamma)
}

/// The Z-test decision of Eqn 16: reject `H₀: θ ≤ θ₀` iff
/// `X > N_H·θ₀ + z_γ·√(N_H·θ₀(1−θ₀))`.
pub fn reject_h0(x: u64, n_samples: u64, theta0: f64, gamma: f64) -> bool {
    let n = n_samples as f64;
    let threshold = n * theta0 + z_critical(gamma) * (n * theta0 * (1.0 - theta0)).sqrt();
    (x as f64) > threshold
}

/// Sample size of Theorem 5.1 (Fleiss): the smallest `N_H` bounding the
/// Type-I error by `γ` and the Type-II error by `η` when distinguishing
/// `θ₀` from `θ₁ = (1+φ)·θ₀`.
pub fn sample_size(theta0: f64, gamma: f64, eta: f64, phi: f64) -> u64 {
    let theta1 = ((1.0 + phi) * theta0).min(1.0);
    let zg = z_critical(gamma);
    let ze = z_critical(eta);
    let num = zg * (theta0 * (1.0 - theta0)).sqrt() + ze * (theta1 * (1.0 - theta1)).sqrt();
    let denom = theta1 - theta0;
    assert!(
        denom > 0.0,
        "theta1 must exceed theta0 (phi > 0, theta0 < 1)"
    );
    (num / denom).powi(2).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        // Textbook values.
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!((normal_quantile(0.8) - 0.841621).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn tails() {
        assert!(normal_quantile(1e-10) < -6.0);
        assert!(normal_quantile(1.0 - 1e-10) > 6.0);
    }

    #[test]
    #[should_panic(expected = "quantile argument")]
    fn quantile_domain() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn z_critical_common_levels() {
        assert!((z_critical(0.05) - 1.645).abs() < 1e-3);
        assert!((z_critical(0.2) - 0.842).abs() < 1e-3);
    }

    #[test]
    fn reject_h0_threshold_behaviour() {
        // N=10000, θ0=0.05 ⇒ threshold ≈ 500 + 1.645·21.79 ≈ 535.8.
        assert!(!reject_h0(500, 10_000, 0.05, 0.05));
        assert!(!reject_h0(535, 10_000, 0.05, 0.05));
        assert!(reject_h0(536, 10_000, 0.05, 0.05));
        assert!(reject_h0(9999, 10_000, 0.05, 0.05));
    }

    #[test]
    fn sample_size_at_paper_defaults() {
        // γ=0.05, η=0.2, φ=0.1, θ0=0.05: the Fleiss formula gives ~12k.
        let n = sample_size(0.05, 0.05, 0.2, 0.1);
        assert!((10_000..15_000).contains(&n), "got {n}");
    }

    #[test]
    fn sample_size_decreases_with_theta0() {
        // Larger θ0 ⇒ larger absolute gap θ1−θ0 ⇒ fewer samples
        // (this drives the Figure 6l LSP-cost trend).
        let n_small = sample_size(0.01, 0.05, 0.2, 0.1);
        let n_big = sample_size(0.10, 0.05, 0.2, 0.1);
        assert!(n_small > n_big, "{n_small} !> {n_big}");
    }

    #[test]
    fn sample_size_monotone_in_confidence() {
        let loose = sample_size(0.05, 0.1, 0.3, 0.1);
        let tight = sample_size(0.05, 0.01, 0.05, 0.1);
        assert!(tight > loose);
    }

    #[test]
    fn theta1_capped_at_one() {
        // θ0 close to 1 with φ pushing θ1 past 1 must still work.
        let n = sample_size(0.99, 0.05, 0.2, 0.1);
        assert!(n > 0);
    }
}
