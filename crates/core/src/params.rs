//! Protocol configuration (the paper's Table 1/Table 3 parameters) and
//! its validation against Definition 2.2.

use ppgnn_geo::Aggregate;
use serde::{Deserialize, Serialize};

use crate::error::PpgnnError;

/// Which protocol variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// PPGNN (§4.2): single-level private selection.
    Plain,
    /// PPGNN-OPT (§6): two-phase selection with ε₁/ε₂ layering.
    Opt,
    /// Naive (§4): every user sends `δ` locations, no partitioning.
    Naive,
}

/// Confidence parameters of the §5.3 hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypothesisConfig {
    /// Type-I error bound γ (missed attacks).
    pub gamma: f64,
    /// Type-II error bound η (false alarms).
    pub eta: f64,
    /// Ratio difference φ between θ₁ and θ₀: `θ₁ = (1+φ)·θ₀`.
    pub phi: f64,
}

impl Default for HypothesisConfig {
    /// The "commonly used" values of §5.3: γ = 0.05, η = 0.2, φ = 0.1.
    fn default() -> Self {
        HypothesisConfig {
            gamma: 0.05,
            eta: 0.2,
            phi: 0.1,
        }
    }
}

/// Full protocol configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpgnnConfig {
    /// POIs to retrieve, `k`.
    pub k: usize,
    /// Privacy I anonymity parameter `d > 1` (location-set size).
    pub d: usize,
    /// Privacy II anonymity parameter `δ ≥ d`.
    pub delta: usize,
    /// Privacy IV parameter `θ₀ ∈ (0, 1]`.
    pub theta0: f64,
    /// Paillier key size in bits (the paper's default: 1024).
    pub keysize: usize,
    /// Aggregate cost function `F` (the paper's experiments use `sum`).
    pub aggregate: Aggregate,
    /// Hypothesis-test confidence parameters.
    pub hypothesis: HypothesisConfig,
    /// Run answer sanitation (disable for PPGNN-NAS, the no-collusion
    /// relaxation used as a baseline in §8.3.2)?
    pub sanitize: bool,
    /// Protocol variant.
    pub variant: Variant,
    /// Pre-compute encryption randomizers offline (the mobile-user
    /// optimization: `r^{N^s}` is plaintext-independent, so an idle
    /// device can prepare it before the query). When set, the pool
    /// generation is *not* charged to the per-query user cost; the
    /// `offline_randomizers` counter records how many were consumed.
    pub offline_randomness: bool,
}

impl PpgnnConfig {
    /// The paper's default group-query configuration (Table 3) at the
    /// paper's 1024-bit key size.
    pub fn paper_defaults() -> Self {
        PpgnnConfig {
            k: 8,
            d: 25,
            delta: 100,
            theta0: 0.05,
            keysize: 1024,
            aggregate: Aggregate::Sum,
            hypothesis: HypothesisConfig::default(),
            sanitize: true,
            variant: Variant::Plain,
            offline_randomness: false,
        }
    }

    /// A small-key configuration for fast tests: protocol-identical, just
    /// a 128-bit toy modulus.
    pub fn fast_test() -> Self {
        PpgnnConfig {
            keysize: 128,
            ..Self::paper_defaults()
        }
    }

    /// Validates the configuration for a group of `n` users
    /// (Definition 2.2 plus the `δ ≤ d^n` requirement of §4.1).
    pub fn validate(&self, n: usize) -> Result<(), PpgnnError> {
        if n == 0 {
            return Err(PpgnnError::InvalidConfig(
                "group size n must be >= 1".into(),
            ));
        }
        if self.k == 0 {
            return Err(PpgnnError::InvalidConfig("k must be >= 1".into()));
        }
        if self.d < 2 {
            return Err(PpgnnError::InvalidConfig(format!(
                "Privacy I requires d > 1, got d = {}",
                self.d
            )));
        }
        if self.delta < self.d {
            return Err(PpgnnError::InvalidConfig(format!(
                "Privacy II requires delta >= d, got delta = {} < d = {}",
                self.delta, self.d
            )));
        }
        if !(self.theta0 > 0.0 && self.theta0 <= 1.0) {
            return Err(PpgnnError::InvalidConfig(format!(
                "theta0 must lie in (0, 1], got {}",
                self.theta0
            )));
        }
        // δ ≤ d^n, computed with saturation (d^n overflows fast).
        let mut cap: u128 = 1;
        for _ in 0..n {
            cap = cap.saturating_mul(self.d as u128);
            if cap >= self.delta as u128 {
                break;
            }
        }
        if cap < self.delta as u128 {
            return Err(PpgnnError::DeltaUnreachable {
                delta: self.delta,
                d: self.d,
                n,
            });
        }
        if self.keysize < 80 {
            return Err(PpgnnError::InvalidConfig(format!(
                "keysize {} is too small to pack one 64-bit answer record",
                self.keysize
            )));
        }
        let h = &self.hypothesis;
        for (name, v) in [("gamma", h.gamma), ("eta", h.eta)] {
            if !(v > 0.0 && v < 0.5) {
                return Err(PpgnnError::InvalidConfig(format!(
                    "hypothesis parameter {name} must lie in (0, 0.5), got {v}"
                )));
            }
        }
        if h.phi <= 0.0 {
            return Err(PpgnnError::InvalidConfig("phi must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        PpgnnConfig::paper_defaults().validate(8).unwrap();
        // n = 1 requires δ = d (Table 3's single-user scenario).
        let single = PpgnnConfig {
            delta: 25,
            ..PpgnnConfig::fast_test()
        };
        single.validate(1).unwrap();
    }

    #[test]
    fn single_user_needs_delta_le_d() {
        // n = 1: delta <= d^1 = d, and delta >= d, so delta == d.
        let mut c = PpgnnConfig::fast_test();
        c.d = 25;
        c.delta = 25;
        c.validate(1).unwrap();
        c.delta = 26;
        assert!(matches!(
            c.validate(1),
            Err(PpgnnError::DeltaUnreachable { .. })
        ));
    }

    #[test]
    fn delta_below_d_rejected() {
        let mut c = PpgnnConfig::fast_test();
        c.delta = c.d - 1;
        assert!(c.validate(4).is_err());
    }

    #[test]
    fn d_of_one_rejected() {
        let mut c = PpgnnConfig::fast_test();
        c.d = 1;
        c.delta = 1;
        assert!(c.validate(2).is_err());
    }

    #[test]
    fn theta0_bounds() {
        let mut c = PpgnnConfig::fast_test();
        c.theta0 = 0.0;
        assert!(c.validate(2).is_err());
        c.theta0 = 1.0;
        c.validate(2).unwrap();
        c.theta0 = 1.5;
        assert!(c.validate(2).is_err());
    }

    #[test]
    fn huge_n_does_not_overflow_cap_check() {
        let mut c = PpgnnConfig::fast_test();
        c.delta = 200;
        c.validate(1000).unwrap();
    }

    #[test]
    fn zero_n_or_k_rejected() {
        let c = PpgnnConfig::fast_test();
        assert!(c.validate(0).is_err());
        let mut c2 = c.clone();
        c2.k = 0;
        assert!(c2.validate(2).is_err());
    }

    #[test]
    fn hypothesis_params_validated() {
        let mut c = PpgnnConfig::fast_test();
        c.hypothesis.gamma = 0.0;
        assert!(c.validate(2).is_err());
        let mut c2 = PpgnnConfig::fast_test();
        c2.hypothesis.phi = -0.1;
        assert!(c2.validate(2).is_err());
    }
}
