//! The pluggable "query answering black box" of §1: "the proposed privacy
//! preserving approach can be easily adopted to any group query because it
//! treats the query answering (i.e., kGNN) as a black box."
//!
//! [`QueryEngine`] is that box. The default is [`MbmEngine`] (the MBM
//! algorithm \[24\] over an R-tree, as in the paper's experiments); the
//! brute-force oracle and any custom group query (e.g. a meeting-location
//! determination algorithm for PPMLD — see `examples/ppmld.rs`) plug in
//! the same way.

use std::sync::RwLock;

use ppgnn_geo::{group_knn_brute_force, Aggregate, DynamicRTree, Poi, PoiId, Point, RTree};

/// A plaintext group-query answering engine.
pub trait QueryEngine: Send + Sync {
    /// Answers one candidate query: the best `k` POIs for the given
    /// locations, best first.
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi>;

    /// Number of POIs in the database (used for diagnostics only).
    fn database_size(&self) -> usize;
}

/// The MBM group-kNN engine (R-tree best-first with aggregate MINDIST).
#[derive(Debug, Clone)]
pub struct MbmEngine {
    tree: RTree,
}

impl MbmEngine {
    /// Bulk-loads the database.
    pub fn new(pois: Vec<Poi>) -> Self {
        MbmEngine {
            tree: RTree::bulk_load(pois),
        }
    }

    /// The underlying R-tree.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }
}

impl QueryEngine for MbmEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        self.tree.group_knn(query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.tree.len()
    }
}

/// An updatable engine: the `§1` dynamic-database claim in executable
/// form. Insertions and deletions are O(1) amortized (buffered
/// [`DynamicRTree`]), and the *next query* reflects them — no
/// pre-computed answers exist to invalidate (contrast with
/// `Apnn::insert`, which must recompute grid cells).
#[derive(Debug)]
pub struct DynamicMbmEngine {
    tree: RwLock<DynamicRTree>,
}

impl DynamicMbmEngine {
    /// Bulk-loads the initial database.
    pub fn new(pois: Vec<Poi>) -> Self {
        DynamicMbmEngine {
            tree: RwLock::new(DynamicRTree::new(pois)),
        }
    }

    /// Inserts a POI; visible to the next query.
    pub fn insert(&self, poi: Poi) {
        self.tree.write().expect("index lock").insert(poi);
    }

    /// Removes a POI by id; hidden from the next query.
    pub fn remove(&self, id: PoiId) {
        self.tree.write().expect("index lock").remove(id);
    }
}

impl QueryEngine for DynamicMbmEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        self.tree
            .read()
            .expect("index lock")
            .group_knn(query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.tree.read().expect("index lock").len()
    }
}

/// A frozen, lock-free engine over one version of a dynamic database.
///
/// [`DynamicMbmEngine`] serializes every query through its `RwLock`;
/// `SnapshotEngine` instead owns an immutable [`DynamicRTree`] clone, so
/// queries against a published snapshot never contend with writers. The
/// versioned `DynamicLsp` handle republishes a fresh `SnapshotEngine`
/// after each mutation batch.
#[derive(Debug, Clone)]
pub struct SnapshotEngine {
    tree: DynamicRTree,
}

impl SnapshotEngine {
    /// Freezes one version of the dynamic index.
    pub fn new(tree: DynamicRTree) -> Self {
        SnapshotEngine { tree }
    }
}

impl QueryEngine for SnapshotEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        self.tree.group_knn(query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.tree.len()
    }
}

/// Brute-force engine: exact by construction, O(D log D) per query.
#[derive(Debug, Clone)]
pub struct BruteForceEngine {
    pois: Vec<Poi>,
}

impl BruteForceEngine {
    /// Wraps the database.
    pub fn new(pois: Vec<Poi>) -> Self {
        BruteForceEngine { pois }
    }
}

impl QueryEngine for BruteForceEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        group_knn_brute_force(&self.pois, query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.pois.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Poi> {
        (0..50)
            .map(|i| Poi::new(i, Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 5.0)))
            .collect()
    }

    #[test]
    fn engines_agree() {
        let mbm = MbmEngine::new(db());
        let bf = BruteForceEngine::new(db());
        let q = vec![Point::new(0.3, 0.3), Point::new(0.6, 0.7)];
        for agg in Aggregate::ALL {
            let a = mbm.answer(&q, 5, agg);
            let b = bf.answer(&q, 5, agg);
            assert_eq!(
                a.iter().map(|p| p.id).collect::<Vec<_>>(),
                b.iter().map(|p| p.id).collect::<Vec<_>>(),
                "{agg}"
            );
        }
    }

    #[test]
    fn database_size_reported() {
        assert_eq!(MbmEngine::new(db()).database_size(), 50);
        assert_eq!(BruteForceEngine::new(db()).database_size(), 50);
    }

    #[test]
    fn dynamic_engine_reflects_updates() {
        let engine = DynamicMbmEngine::new(db());
        let q = vec![Point::new(0.123, 0.456)];
        let before = engine.answer(&q, 1, Aggregate::Sum)[0];
        engine.insert(Poi::new(777, q[0]));
        let after = engine.answer(&q, 1, Aggregate::Sum)[0];
        assert_eq!(after.id, 777, "insert visible to the next query");
        engine.remove(777);
        assert_eq!(engine.answer(&q, 1, Aggregate::Sum)[0].id, before.id);
        assert_eq!(engine.database_size(), 50);
    }

    #[test]
    fn trait_object_usable() {
        let engines: Vec<Box<dyn QueryEngine>> = vec![
            Box::new(MbmEngine::new(db())),
            Box::new(BruteForceEngine::new(db())),
        ];
        for e in &engines {
            let ans = e.answer(&[Point::new(0.0, 0.0)], 3, Aggregate::Sum);
            assert_eq!(ans.len(), 3);
        }
    }
}
