//! Wire serialization of the protocol messages.
//!
//! The cost ledger charges `byte_len()` per message; this module is the
//! proof those numbers are honest: every message actually serializes to
//! exactly `byte_len()` bytes and round-trips. Decoding needs the
//! session context (key size, variant, split ω) — all public protocol
//! parameters negotiated before the query, never secret.

use ppgnn_bigint::BigUint;
use ppgnn_geo::Point;
use ppgnn_paillier::{Ciphertext, EncryptedVector, PublicKey};
use ppgnn_sim::{LOCATION_BYTES, SCALAR_BYTES};
use ppgnn_telemetry as telemetry;

use crate::error::PpgnnError;
use crate::messages::{AnswerMessage, IndicatorPayload, LocationSetMessage, QueryMessage};
use crate::partition::PartitionParams;

/// Public session context a decoder needs.
#[derive(Debug, Clone, Copy)]
pub struct WireContext {
    /// The negotiated Paillier key size in bits.
    pub key_bits: usize,
    /// Whether the indicator is two-phase, and if so its block count ω.
    pub two_phase_omega: Option<usize>,
    /// Whether a partition block is present (absent for Naive).
    pub has_partition: bool,
}

/// Largest accepted `k` in a wire query.
pub const MAX_WIRE_K: usize = 1 << 20;
/// Largest accepted subgroup count α / segment count β. The paper's
/// grid tops out at n = 32, d = 50; this bound is generous while
/// keeping a garbage frame from forcing huge allocations.
pub const MAX_WIRE_PARTITION: usize = 1 << 16;
/// Largest accepted single subgroup/segment size.
pub const MAX_WIRE_PARTITION_SIZE: usize = 1 << 20;
/// Largest accepted user index in a location set.
pub const MAX_WIRE_USER_INDEX: usize = 1 << 20;

fn put_u32(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u32).to_le_bytes());
}

fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    width: usize,
    field: &'static str,
) -> Result<&'a [u8], PpgnnError> {
    let end = pos.checked_add(width).ok_or(PpgnnError::TruncatedMessage {
        field,
        needed: width,
        have: buf.len().saturating_sub(*pos),
    })?;
    let slice = buf.get(*pos..end).ok_or(PpgnnError::TruncatedMessage {
        field,
        needed: width,
        have: buf.len().saturating_sub(*pos),
    })?;
    *pos = end;
    Ok(slice)
}

fn get_u32(buf: &[u8], pos: &mut usize, field: &'static str) -> Result<usize, PpgnnError> {
    let bytes: [u8; 4] = take(buf, pos, 4, field)?.try_into().expect("slice of 4");
    Ok(u32::from_le_bytes(bytes) as usize)
}

fn get_u32_bounded(
    buf: &[u8],
    pos: &mut usize,
    field: &'static str,
    max: usize,
) -> Result<usize, PpgnnError> {
    let v = get_u32(buf, pos, field)?;
    if v > max {
        return Err(PpgnnError::FieldOutOfRange {
            field,
            value: v as u64,
            max: max as u64,
        });
    }
    Ok(v)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize, field: &'static str) -> Result<f64, PpgnnError> {
    let bytes: [u8; 8] = take(buf, pos, 8, field)?.try_into().expect("slice of 8");
    Ok(f64::from_le_bytes(bytes))
}

/// Writes a big integer left-padded to exactly `width` bytes.
fn put_big(buf: &mut Vec<u8>, v: &BigUint, width: usize) {
    let bytes = v.to_bytes_be();
    assert!(bytes.len() <= width, "value wider than its wire slot");
    buf.extend(std::iter::repeat_n(0u8, width - bytes.len()));
    buf.extend_from_slice(&bytes);
}

fn get_big(
    buf: &[u8],
    pos: &mut usize,
    width: usize,
    field: &'static str,
) -> Result<BigUint, PpgnnError> {
    Ok(BigUint::from_bytes_be(take(buf, pos, width, field)?))
}

/// Rejects a frame whose decoder did not consume every byte: the
/// declared frame length must agree with the message's `byte_len()`.
fn expect_consumed(buf: &[u8], pos: usize) -> Result<(), PpgnnError> {
    if pos != buf.len() {
        return Err(PpgnnError::TrailingBytes {
            consumed: pos,
            total: buf.len(),
        });
    }
    Ok(())
}

impl LocationSetMessage {
    /// Serializes to exactly [`LocationSetMessage::byte_len`] bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireEncode);
        let _t = telemetry::global().time(telemetry::Stage::WireEncode);
        let mut buf = Vec::with_capacity(self.byte_len());
        put_u32(&mut buf, self.user_index);
        for l in &self.locations {
            put_f64(&mut buf, l.x);
            put_f64(&mut buf, l.y);
        }
        debug_assert_eq!(buf.len(), self.byte_len());
        sp.attr(telemetry::trace::AttrKey::Bytes, buf.len() as u64);
        buf
    }

    /// Parses a wire location set (count inferred from the length).
    pub fn from_wire(buf: &[u8]) -> Result<Self, PpgnnError> {
        if (buf.len() < SCALAR_BYTES) || !(buf.len() - SCALAR_BYTES).is_multiple_of(LOCATION_BYTES)
        {
            return Err(PpgnnError::BadAnswerEncoding(
                "bad location-set framing".into(),
            ));
        }
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireDecode);
        sp.attr(telemetry::trace::AttrKey::Bytes, buf.len() as u64);
        let _t = telemetry::global().time(telemetry::Stage::WireDecode);
        let mut pos = 0;
        let user_index = get_u32_bounded(buf, &mut pos, "user_index", MAX_WIRE_USER_INDEX)?;
        let count = (buf.len() - SCALAR_BYTES) / LOCATION_BYTES;
        let mut locations = Vec::with_capacity(count);
        for _ in 0..count {
            let x = get_f64(buf, &mut pos, "location.x")?;
            let y = get_f64(buf, &mut pos, "location.y")?;
            locations.push(Point::new(x, y));
        }
        expect_consumed(buf, pos)?;
        Ok(LocationSetMessage {
            user_index,
            locations,
        })
    }
}

fn put_vector(buf: &mut Vec<u8>, v: &EncryptedVector, width: usize) {
    for c in v.elements() {
        put_big(buf, c.value(), width);
    }
}

fn get_vector(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    width: usize,
    level: usize,
) -> Result<EncryptedVector, PpgnnError> {
    let mut elements = Vec::with_capacity(count);
    for _ in 0..count {
        elements.push(Ciphertext::from_parts(
            get_big(buf, pos, width, "ciphertext")?,
            level,
        ));
    }
    Ok(EncryptedVector::from_ciphertexts(elements))
}

impl QueryMessage {
    /// Serializes to exactly [`QueryMessage::byte_len`] bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireEncode);
        sp.attr(telemetry::trace::AttrKey::Bytes, self.byte_len() as u64);
        let _t = telemetry::global().time(telemetry::Stage::WireEncode);
        let mut buf = Vec::with_capacity(self.byte_len());
        put_u32(&mut buf, self.k);
        put_big(&mut buf, self.pk.n(), self.pk.key_bits().div_ceil(8));
        if let Some(p) = &self.partition {
            put_u32(&mut buf, p.alpha());
            put_u32(&mut buf, p.beta());
            for &s in &p.subgroup_sizes {
                put_u32(&mut buf, s);
            }
            for &s in &p.segment_sizes {
                put_u32(&mut buf, s);
            }
        }
        let w1 = self.pk.ciphertext_bytes(1);
        let w2 = self.pk.ciphertext_bytes(2);
        match &self.indicator {
            IndicatorPayload::Plain(v) => put_vector(&mut buf, v, w1),
            IndicatorPayload::TwoPhase { inner, outer } => {
                put_vector(&mut buf, inner, w1);
                put_vector(&mut buf, outer, w2);
            }
        }
        put_f64(&mut buf, self.theta0);
        debug_assert_eq!(buf.len(), self.byte_len());
        buf
    }

    /// Parses a wire query under the session context.
    ///
    /// Every malformed input — truncated, oversized counts, trailing
    /// garbage — returns a typed [`PpgnnError`]; this function never
    /// panics on attacker-controlled bytes.
    pub fn from_wire(buf: &[u8], ctx: &WireContext) -> Result<Self, PpgnnError> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireDecode);
        sp.attr(telemetry::trace::AttrKey::Bytes, buf.len() as u64);
        let _t = telemetry::global().time(telemetry::Stage::WireDecode);
        let mut pos = 0;
        let k = get_u32_bounded(buf, &mut pos, "k", MAX_WIRE_K)?;
        let n_width = ctx.key_bits.div_ceil(8);
        let pk = PublicKey::from_modulus(get_big(buf, &mut pos, n_width, "pk modulus")?);
        // An honest modulus N = p·q of a `key_bits` session has exactly
        // `key_bits` bits and is odd. Anything else desyncs every
        // ciphertext width derived from `pk` below — and a zero modulus
        // would make those widths zero, turning the length-inferred
        // element counts into divisions by zero.
        if pk.key_bits() != ctx.key_bits || !pk.n().bit(0) {
            return Err(PpgnnError::FieldOutOfRange {
                field: "pk modulus bits",
                value: pk.key_bits() as u64,
                max: ctx.key_bits as u64,
            });
        }
        let partition = if ctx.has_partition {
            let alpha = get_u32_bounded(buf, &mut pos, "alpha", MAX_WIRE_PARTITION)?;
            let beta = get_u32_bounded(buf, &mut pos, "beta", MAX_WIRE_PARTITION)?;
            // A count that cannot fit in the remaining bytes is rejected
            // before the allocation it sizes.
            let declared = (alpha + beta) * SCALAR_BYTES;
            if declared > buf.len().saturating_sub(pos) {
                return Err(PpgnnError::TruncatedMessage {
                    field: "partition sizes",
                    needed: declared,
                    have: buf.len().saturating_sub(pos),
                });
            }
            let mut subgroup_sizes = Vec::with_capacity(alpha);
            for _ in 0..alpha {
                subgroup_sizes.push(get_u32_bounded(
                    buf,
                    &mut pos,
                    "subgroup size",
                    MAX_WIRE_PARTITION_SIZE,
                )?);
            }
            let mut segment_sizes = Vec::with_capacity(beta);
            for _ in 0..beta {
                segment_sizes.push(get_u32_bounded(
                    buf,
                    &mut pos,
                    "segment size",
                    MAX_WIRE_PARTITION_SIZE,
                )?);
            }
            Some(PartitionParams {
                subgroup_sizes,
                segment_sizes,
            })
        } else {
            None
        };
        let w1 = pk.ciphertext_bytes(1);
        let w2 = pk.ciphertext_bytes(2);
        // θ0 trails the indicator; a buffer too short to even hold it is
        // truncated, not a zero-length indicator.
        let remaining = buf
            .len()
            .checked_sub(pos + 8)
            .ok_or(PpgnnError::TruncatedMessage {
                field: "theta0",
                needed: 8,
                have: buf.len().saturating_sub(pos),
            })?;
        let indicator = match ctx.two_phase_omega {
            None => {
                if !remaining.is_multiple_of(w1) {
                    return Err(PpgnnError::BadAnswerEncoding(
                        "bad indicator framing".into(),
                    ));
                }
                IndicatorPayload::Plain(get_vector(buf, &mut pos, remaining / w1, w1, 1)?)
            }
            Some(omega) => {
                let outer_bytes = omega.checked_mul(w2).ok_or(PpgnnError::FieldOutOfRange {
                    field: "omega",
                    value: omega as u64,
                    max: (usize::MAX / w2.max(1)) as u64,
                })?;
                if remaining < outer_bytes || !(remaining - outer_bytes).is_multiple_of(w1) {
                    return Err(PpgnnError::BadAnswerEncoding(
                        "bad two-phase framing".into(),
                    ));
                }
                let inner = get_vector(buf, &mut pos, (remaining - outer_bytes) / w1, w1, 1)?;
                let outer = get_vector(buf, &mut pos, omega, w2, 2)?;
                IndicatorPayload::TwoPhase { inner, outer }
            }
        };
        let theta0 = get_f64(buf, &mut pos, "theta0")?;
        expect_consumed(buf, pos)?;
        Ok(QueryMessage {
            k,
            pk,
            partition,
            indicator,
            theta0,
        })
    }
}

impl AnswerMessage {
    /// Serializes to exactly [`AnswerMessage::byte_len`] bytes.
    pub fn to_wire(&self, pk: &PublicKey) -> Vec<u8> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireEncode);
        sp.attr(telemetry::trace::AttrKey::Bytes, self.byte_len(pk) as u64);
        let _t = telemetry::global().time(telemetry::Stage::WireEncode);
        let mut buf = Vec::with_capacity(self.byte_len(pk));
        match self {
            AnswerMessage::Plain(v) => put_vector(&mut buf, v, pk.ciphertext_bytes(1)),
            AnswerMessage::TwoPhase(v) => put_vector(&mut buf, v, pk.ciphertext_bytes(2)),
        }
        debug_assert_eq!(buf.len(), self.byte_len(pk));
        buf
    }

    /// Parses a wire answer under the session context.
    pub fn from_wire(buf: &[u8], pk: &PublicKey, two_phase: bool) -> Result<Self, PpgnnError> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::WireDecode);
        sp.attr(telemetry::trace::AttrKey::Bytes, buf.len() as u64);
        let _t = telemetry::global().time(telemetry::Stage::WireDecode);
        let mut pos = 0;
        if two_phase {
            let w = pk.ciphertext_bytes(2);
            if !buf.len().is_multiple_of(w) {
                return Err(PpgnnError::BadAnswerEncoding("bad answer framing".into()));
            }
            Ok(AnswerMessage::TwoPhase(get_vector(
                buf,
                &mut pos,
                buf.len() / w,
                w,
                2,
            )?))
        } else {
            let w = pk.ciphertext_bytes(1);
            if !buf.len().is_multiple_of(w) {
                return Err(PpgnnError::BadAnswerEncoding("bad answer framing".into()));
            }
            Ok(AnswerMessage::Plain(get_vector(
                buf,
                &mut pos,
                buf.len() / w,
                w,
                1,
            )?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_paillier::{generate_keypair, DjContext};

    /// Same call shape as the retired free function, built on the
    /// unified `Encryptor` API.
    fn encrypt_indicator<R: rand::Rng + ?Sized>(
        len: usize,
        pos: usize,
        ctx: &DjContext,
        rng: &mut R,
    ) -> ppgnn_paillier::EncryptedVector {
        use ppgnn_paillier::{Encryptor, FreshEncryptor};
        use rand::SeedableRng;
        FreshEncryptor::with_rng(ctx.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()))
            .encrypt_indicator(len, pos)
            .unwrap()
    }

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (PublicKey, DjContext, DjContext, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (pk, _) = generate_keypair(128, &mut rng);
        let c1 = DjContext::new(&pk, 1);
        let c2 = DjContext::new(&pk, 2);
        (pk, c1, c2, rng)
    }

    #[test]
    fn location_set_roundtrip_and_exact_length() {
        let msg = LocationSetMessage {
            user_index: 3,
            locations: vec![Point::new(0.25, 0.75), Point::new(1.0, 0.0)],
        };
        let wire = msg.to_wire();
        assert_eq!(wire.len(), msg.byte_len());
        let back = LocationSetMessage::from_wire(&wire).unwrap();
        assert_eq!(back.user_index, 3);
        assert_eq!(back.locations, msg.locations);
    }

    #[test]
    fn query_plain_roundtrip_exact_length() {
        let (pk, c1, _, mut rng) = setup();
        let msg = QueryMessage {
            k: 8,
            pk: pk.clone(),
            partition: Some(PartitionParams {
                subgroup_sizes: vec![2, 2],
                segment_sizes: vec![3, 1],
            }),
            indicator: IndicatorPayload::Plain(encrypt_indicator(10, 7, &c1, &mut rng)),
            theta0: 0.05,
        };
        let wire = msg.to_wire();
        assert_eq!(wire.len(), msg.byte_len(), "ledger bytes must be honest");
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: true,
        };
        let back = QueryMessage::from_wire(&wire, &ctx).unwrap();
        assert_eq!(back.k, 8);
        assert_eq!(back.pk, pk);
        assert_eq!(back.partition, msg.partition);
        assert_eq!(back.theta0, 0.05);
        let IndicatorPayload::Plain(v) = back.indicator else {
            panic!()
        };
        let IndicatorPayload::Plain(orig) = msg.indicator else {
            panic!()
        };
        assert_eq!(v.elements(), orig.elements());
    }

    #[test]
    fn query_two_phase_roundtrip() {
        let (pk, c1, c2, mut rng) = setup();
        let msg = QueryMessage {
            k: 4,
            pk: pk.clone(),
            partition: None,
            indicator: IndicatorPayload::TwoPhase {
                inner: encrypt_indicator(5, 2, &c1, &mut rng),
                outer: encrypt_indicator(3, 1, &c2, &mut rng),
            },
            theta0: 0.1,
        };
        let wire = msg.to_wire();
        assert_eq!(wire.len(), msg.byte_len());
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: Some(3),
            has_partition: false,
        };
        let back = QueryMessage::from_wire(&wire, &ctx).unwrap();
        let IndicatorPayload::TwoPhase { inner, outer } = back.indicator else {
            panic!()
        };
        assert_eq!(inner.len(), 5);
        assert_eq!(outer.len(), 3);
        let IndicatorPayload::TwoPhase {
            inner: oi,
            outer: oo,
        } = msg.indicator
        else {
            panic!()
        };
        assert_eq!(inner.elements(), oi.elements());
        assert_eq!(outer.elements(), oo.elements());
    }

    #[test]
    fn answer_roundtrip_both_levels() {
        let (pk, c1, c2, mut rng) = setup();
        let plain = AnswerMessage::Plain(encrypt_indicator(4, 1, &c1, &mut rng));
        let wire = plain.to_wire(&pk);
        assert_eq!(wire.len(), plain.byte_len(&pk));
        let back = AnswerMessage::from_wire(&wire, &pk, false).unwrap();
        let (AnswerMessage::Plain(a), AnswerMessage::Plain(b)) = (&plain, &back) else {
            panic!()
        };
        assert_eq!(a.elements(), b.elements());

        let two = AnswerMessage::TwoPhase(encrypt_indicator(2, 0, &c2, &mut rng));
        let wire = two.to_wire(&pk);
        assert_eq!(wire.len(), two.byte_len(&pk));
        assert!(AnswerMessage::from_wire(&wire, &pk, true).is_ok());
    }

    #[test]
    fn truncated_buffers_rejected() {
        let (pk, c1, _, mut rng) = setup();
        let msg = QueryMessage {
            k: 2,
            pk: pk.clone(),
            partition: None,
            indicator: IndicatorPayload::Plain(encrypt_indicator(3, 0, &c1, &mut rng)),
            theta0: 0.05,
        };
        let wire = msg.to_wire();
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: false,
        };
        // Chop bytes off: either framing or trailing-f64 reads must fail.
        assert!(QueryMessage::from_wire(&wire[..wire.len() - 3], &ctx).is_err());
        assert!(LocationSetMessage::from_wire(&[1, 2, 3]).is_err());
        assert!(AnswerMessage::from_wire(&wire[..5], &pk, false).is_err());
    }

    #[test]
    fn every_truncation_prefix_is_rejected_not_panicking() {
        // Chop the valid query at every length: the decoder must return a
        // typed error (or, for a few lucky prefixes, a shorter-but-valid
        // message) — never panic or accept trailing garbage.
        let (pk, c1, _, mut rng) = setup();
        let msg = QueryMessage {
            k: 2,
            pk,
            partition: Some(PartitionParams {
                subgroup_sizes: vec![1, 1],
                segment_sizes: vec![2, 2],
            }),
            indicator: IndicatorPayload::Plain(encrypt_indicator(4, 1, &c1, &mut rng)),
            theta0: 0.05,
        };
        let wire = msg.to_wire();
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: true,
        };
        for cut in 0..wire.len() {
            let _ = QueryMessage::from_wire(&wire[..cut], &ctx);
        }
        for cut in 0..wire.len() {
            let _ = LocationSetMessage::from_wire(&wire[..cut]);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (pk, c1, _, mut rng) = setup();
        let msg = QueryMessage {
            k: 2,
            pk,
            partition: None,
            indicator: IndicatorPayload::Plain(encrypt_indicator(3, 0, &c1, &mut rng)),
            theta0: 0.05,
        };
        let wire = msg.to_wire();
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: false,
        };
        // Trailing garbage that misaligns the ε₁ ciphertext framing must
        // be rejected, whatever the amount.
        for pad in [1usize, 7, 31, 33] {
            let mut padded = wire.clone();
            padded.extend(std::iter::repeat_n(0u8, pad));
            assert!(matches!(
                QueryMessage::from_wire(&padded, &ctx),
                Err(PpgnnError::BadAnswerEncoding(_)) | Err(PpgnnError::TrailingBytes { .. })
            ));
        }
        // Exactly one ciphertext width of padding is indistinguishable at
        // this layer — the indicator count is length-inferred — so it
        // decodes as one extra element, which the protocol layer rejects
        // against δ′. What matters here: no panic, and nothing silently
        // dropped.
        let mut padded = wire;
        padded.extend(std::iter::repeat_n(0u8, 32));
        let back = QueryMessage::from_wire(&padded, &ctx).unwrap();
        let IndicatorPayload::Plain(v) = back.indicator else {
            panic!()
        };
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn oversized_partition_counts_rejected_without_allocation() {
        // A frame declaring α = u32::MAX must be rejected before the
        // decoder sizes any allocation from it.
        let mut wire = Vec::new();
        put_u32(&mut wire, 2); // k
        wire.extend_from_slice(&[0xFF; 16]); // pk modulus (128-bit ctx)
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // alpha
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // beta
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: true,
        };
        assert!(matches!(
            QueryMessage::from_wire(&wire, &ctx),
            Err(PpgnnError::FieldOutOfRange { field: "alpha", .. })
        ));
    }

    #[test]
    fn plausible_partition_counts_still_need_the_bytes() {
        // Counts within bounds but larger than the buffer are truncation,
        // not allocation.
        let mut wire = Vec::new();
        put_u32(&mut wire, 2);
        wire.extend_from_slice(&[0xFF; 16]);
        put_u32(&mut wire, 4096); // alpha, in bounds
        put_u32(&mut wire, 4096); // beta, in bounds
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: true,
        };
        assert!(matches!(
            QueryMessage::from_wire(&wire, &ctx),
            Err(PpgnnError::TruncatedMessage {
                field: "partition sizes",
                ..
            })
        ));
    }

    #[test]
    fn degenerate_pk_modulus_rejected_not_divide_by_zero() {
        // A query whose modulus slot is all zeros once drove
        // `ciphertext_bytes` to 0 and the length-inferred indicator
        // count into `0 / 0`. Every degenerate modulus (zero, undersized,
        // even) must now map to a typed error.
        let ctx = WireContext {
            key_bits: 128,
            two_phase_omega: None,
            has_partition: false,
        };
        // k + 16 zero bytes of modulus + θ0 and nothing else.
        let mut wire = Vec::new();
        put_u32(&mut wire, 2);
        wire.extend_from_slice(&[0u8; 16]);
        put_f64(&mut wire, 0.05);
        assert!(matches!(
            QueryMessage::from_wire(&wire, &ctx),
            Err(PpgnnError::FieldOutOfRange {
                field: "pk modulus bits",
                ..
            })
        ));
        // Same shape under a two-phase context: also typed, no panic.
        let ctx2 = WireContext {
            key_bits: 128,
            two_phase_omega: Some(3),
            has_partition: false,
        };
        assert!(QueryMessage::from_wire(&wire, &ctx2).is_err());
        // An even modulus of the right width is still not an RSA modulus.
        let mut wire = Vec::new();
        put_u32(&mut wire, 2);
        let mut modulus = [0xFFu8; 16];
        modulus[15] = 0xFE; // even
        wire.extend_from_slice(&modulus);
        put_f64(&mut wire, 0.05);
        assert!(matches!(
            QueryMessage::from_wire(&wire, &ctx),
            Err(PpgnnError::FieldOutOfRange { .. })
        ));
    }

    #[test]
    fn decrypted_after_wire_roundtrip() {
        // Ciphertexts must survive serialization functionally, not just
        // byte-for-byte: decrypt after the roundtrip.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let c1 = DjContext::new(&pk, 1);
        let v = encrypt_indicator(4, 2, &c1, &mut rng);
        let msg = AnswerMessage::Plain(v);
        let back = AnswerMessage::from_wire(&msg.to_wire(&pk), &pk, false).unwrap();
        let AnswerMessage::Plain(v2) = back else {
            panic!()
        };
        let values = ppgnn_paillier::decrypt_vector(&v2, &c1, &sk);
        assert_eq!(values[2], BigUint::one());
        assert!(values[0].is_zero() && values[1].is_zero() && values[3].is_zero());
    }
}
