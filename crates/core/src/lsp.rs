//! The LSP side: Algorithm 2 (query processing).
//!
//! LSP expands the users' location sets into the candidate query list,
//! answers every candidate with the plaintext black box, sanitizes every
//! answer for Privacy IV, encodes the answers into the matrix `A`, and
//! privately selects the real answer with the encrypted indicator(s).

use ppgnn_bigint::BigUint;
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_paillier::{
    matrix_select_with, DjContext, EncryptedVector, SelectOptions, SelectStrategy,
};
use ppgnn_sim::{CostLedger, Party};
use ppgnn_telemetry as telemetry;
use rand::{Rng, SeedableRng};

use crate::candidate::{candidate_queries, CandidateQuery};
use crate::encoding::AnswerCodec;
use crate::engine::{MbmEngine, QueryEngine};
use crate::error::PpgnnError;
use crate::messages::{AnswerMessage, IndicatorPayload, LocationSetMessage, QueryMessage};
use crate::params::PpgnnConfig;
use crate::sanitize::Sanitizer;

/// The location-based service provider.
///
/// One `Lsp` instance is shared by every worker thread of the networked
/// service (`ppgnn-server`), so it must stay `Send + Sync`: the engine
/// box inherits both bounds from the [`QueryEngine`] supertraits and the
/// remaining fields are plain data. The assertion below keeps that true
/// as fields evolve.
pub struct Lsp {
    engine: Box<dyn QueryEngine>,
    config: PpgnnConfig,
    space: Rect,
    /// Worker threads for candidate evaluation (1 = sequential). The
    /// candidates of Algorithm 2 are embarrassingly parallel: LSP is the
    /// well-provisioned party the paper is happy to load (§1's "some
    /// reasonable overhead on LSP"), and parallelism shrinks its
    /// wall-clock without touching any privacy property. The same
    /// budget fans out the private-selection rows.
    parallelism: usize,
    /// Route private selection through the naive per-entry modpow path
    /// instead of Straus multi-exponentiation (A/B benchmarking only;
    /// both paths are bit-identical).
    naive_crypto: bool,
}

const _: () = {
    const fn shareable_across_threads<T: Send + Sync>() {}
    shareable_across_threads::<Lsp>();
};

/// Expands a query's location sets into the plaintext candidate query
/// list (§4.1) — Cartesian subgroup combinations under a partition, or
/// aligned columns for Naive. This is the view LSP actually evaluates:
/// the real group position is one of these candidates, and LSP cannot
/// tell which (Privacy II). The dynamic-world subscription registry
/// reuses the same expansion to compute per-candidate safe regions.
pub fn expand_candidates(
    query: &QueryMessage,
    location_sets: &[LocationSetMessage],
) -> Result<Vec<CandidateQuery>, PpgnnError> {
    // Rebuild the ordered location sets from the user-indexed messages.
    let mut sets: Vec<(usize, &Vec<Point>)> = location_sets
        .iter()
        .map(|m| (m.user_index, &m.locations))
        .collect();
    sets.sort_by_key(|(i, _)| *i);
    let ordered: Vec<Vec<Point>> = sets.into_iter().map(|(_, l)| l.clone()).collect();

    match &query.partition {
        Some(params) => candidate_queries(&ordered, params),
        None => {
            let len = ordered.first().map(|s| s.len()).unwrap_or(0);
            for (i, s) in ordered.iter().enumerate() {
                if s.len() != len {
                    return Err(PpgnnError::BadLocationSet {
                        user: i,
                        expected: len,
                        got: s.len(),
                    });
                }
            }
            Ok((0..len)
                .map(|t| ordered.iter().map(|s| s[t]).collect())
                .collect())
        }
    }
}

impl Lsp {
    /// Creates an LSP over a POI database with the default MBM engine.
    pub fn new(pois: Vec<Poi>, config: PpgnnConfig) -> Self {
        Self::with_engine(Box::new(MbmEngine::new(pois)), config, Rect::UNIT)
    }

    /// Creates an LSP with a custom query black box and data space.
    pub fn with_engine(engine: Box<dyn QueryEngine>, config: PpgnnConfig, space: Rect) -> Self {
        Lsp {
            engine,
            config,
            space,
            parallelism: 1,
            naive_crypto: false,
        }
    }

    /// Sets the number of worker threads for candidate evaluation and
    /// private-selection rows.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Forces the naive (per-entry modpow) selection path — for A/B
    /// benchmarks against the Straus multi-exponentiation default.
    pub fn with_naive_crypto(mut self, naive: bool) -> Self {
        self.naive_crypto = naive;
        self
    }

    /// The selection tuning derived from this LSP's knobs.
    fn select_options(&self) -> SelectOptions {
        SelectOptions {
            parallelism: self.parallelism,
            strategy: if self.naive_crypto {
                SelectStrategy::Naive
            } else {
                SelectStrategy::Straus
            },
        }
    }

    /// The public protocol configuration (shared with users).
    pub fn config(&self) -> &PpgnnConfig {
        &self.config
    }

    /// The normalized data space.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Number of POIs in the database.
    pub fn database_size(&self) -> usize {
        self.engine.database_size()
    }

    /// Answers one plaintext group query directly (no privacy) — the
    /// black box itself, exposed for oracles and baselines.
    pub fn plaintext_answer(&self, query: &[Point], k: usize) -> Vec<Poi> {
        self.engine.answer(query, k, self.config.aggregate)
    }

    /// Algorithm 2: full query processing.
    ///
    /// All CPU time is attributed to [`Party::Lsp`] on the ledger;
    /// counters `kgnn_queries`, `candidate_queries` and
    /// `sanitation_removed` are updated.
    pub fn process_query<R: Rng + ?Sized>(
        &self,
        query: &QueryMessage,
        location_sets: &[LocationSetMessage],
        ledger: &mut CostLedger,
        rng: &mut R,
    ) -> Result<AnswerMessage, PpgnnError> {
        let start = std::time::Instant::now();
        let result = self.process_inner(query, location_sets, ledger, rng);
        ledger.record_cpu(Party::Lsp, start.elapsed());
        result
    }

    fn process_inner<R: Rng + ?Sized>(
        &self,
        query: &QueryMessage,
        location_sets: &[LocationSetMessage],
        ledger: &mut CostLedger,
        rng: &mut R,
    ) -> Result<AnswerMessage, PpgnnError> {
        let candidates = expand_candidates(query, location_sets)?;
        let n = location_sets.len();
        ledger.count("candidate_queries", candidates.len() as u64);

        // Answer + sanitize + encode every candidate (Algorithm 2 lines 2–6),
        // sequentially or fanned out over worker threads.
        let sanitizer = Sanitizer::new(query.theta0, &self.config.hypothesis, self.space);
        let codec = AnswerCodec::new(query.pk.key_bits(), 1, query.k);
        let sanitize = self.config.sanitize && n > 1;
        let eval_span = telemetry::trace::span(telemetry::trace::SpanName::CandidateEval);
        eval_span.attr(
            telemetry::trace::AttrKey::Candidates,
            candidates.len() as u64,
        );
        eval_span.attr(telemetry::trace::AttrKey::Users, n as u64);
        let eval_timer = telemetry::global().time(telemetry::Stage::CandidateEval);
        telemetry::global().incr_by(telemetry::Op::CandidatesEvaluated, candidates.len() as u64);
        let mut columns: Vec<Vec<BigUint>>;
        if self.parallelism <= 1 || candidates.len() < 2 {
            columns = Vec::with_capacity(candidates.len());
            for cand in &candidates {
                let full = self.engine.answer(cand, query.k, self.config.aggregate);
                ledger.count("kgnn_queries", 1);
                let kept = if sanitize {
                    let t = sanitizer.safe_prefix_len(&full, cand, self.config.aggregate, rng);
                    ledger.count("sanitation_removed", (full.len() - t) as u64);
                    t
                } else {
                    full.len()
                };
                columns.push(codec.encode(&full[..kept]));
            }
        } else {
            // Each worker gets an independent seed from the main RNG so
            // the run stays deterministic for a fixed candidate order.
            let chunk = candidates.len().div_ceil(self.parallelism);
            let seeds: Vec<u64> = (0..self.parallelism).map(|_| rng.gen()).collect();
            let mut removed_total = 0u64;
            let results: Vec<Vec<Vec<BigUint>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .zip(&seeds)
                    .map(|(chunk_cands, &seed)| {
                        let sanitizer = &sanitizer;
                        let codec = &codec;
                        let engine = &self.engine;
                        let agg = self.config.aggregate;
                        let k = query.k;
                        scope.spawn(move || {
                            let mut local_rng = rand::rngs::StdRng::seed_from_u64(seed);
                            let mut cols = Vec::with_capacity(chunk_cands.len());
                            let mut removed = 0u64;
                            for cand in chunk_cands {
                                let full = engine.answer(cand, k, agg);
                                let kept = if sanitize {
                                    let t =
                                        sanitizer.safe_prefix_len(&full, cand, agg, &mut local_rng);
                                    removed += (full.len() - t) as u64;
                                    t
                                } else {
                                    full.len()
                                };
                                cols.push(codec.encode(&full[..kept]));
                            }
                            (cols, removed)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (cols, removed) = h.join().expect("LSP worker panicked");
                        removed_total += removed;
                        cols
                    })
                    .collect()
            });
            columns = results.into_iter().flatten().collect();
            ledger.count("kgnn_queries", candidates.len() as u64);
            ledger.count("sanitation_removed", removed_total);
        }

        drop(eval_timer);
        drop(eval_span);

        // Private selection (Theorem 3.1 / §6 two-phase).
        let select_span = telemetry::trace::span(telemetry::trace::SpanName::PrivateSelection);
        select_span.attr(telemetry::trace::AttrKey::SetLen, columns.len() as u64);
        let _select_timer = telemetry::global().time(telemetry::Stage::PrivateSelection);
        let ctx1 = DjContext::new(&query.pk, 1);
        let opts = self.select_options();
        match &query.indicator {
            IndicatorPayload::Plain(v) => {
                if v.len() != columns.len() {
                    return Err(PpgnnError::BadIndicator {
                        expected: columns.len(),
                        got: v.len(),
                    });
                }
                let selected = matrix_select_with(&columns, v, &ctx1, &opts)
                    .map_err(|e| PpgnnError::BadAnswerEncoding(e.to_string()))?;
                Ok(AnswerMessage::Plain(selected))
            }
            IndicatorPayload::TwoPhase { inner, outer } => {
                let block_size = inner.len();
                let omega = outer.len();
                if block_size * omega < columns.len() {
                    return Err(PpgnnError::BadIndicator {
                        expected: columns.len(),
                        got: block_size * omega,
                    });
                }
                // Zero-pad to a full ω × block grid ("padding 0's at the
                // end of v if necessary", §6).
                let m = codec.column_height();
                columns.resize(block_size * omega, vec![BigUint::zero(); m]);

                // Phase 1: select within every block with [v₁] (ε₁).
                let mut block_results: Vec<EncryptedVector> = Vec::with_capacity(omega);
                for b in 0..omega {
                    let block = &columns[b * block_size..(b + 1) * block_size];
                    let sel = matrix_select_with(block, inner, &ctx1, &opts)
                        .map_err(|e| PpgnnError::BadAnswerEncoding(e.to_string()))?;
                    block_results.push(sel);
                }

                // Phase 2: select the block with [[v₂]] (ε₂), treating the
                // ε₁ ciphertexts as ε₂ plaintexts. Row r of the answer is
                // Π_b outer[b]^{block_results[b][r]} — i.e. the transposed
                // matrix select, which shares the per-block ε₂ window
                // tables across all m rows and parallelizes them.
                let ctx2 = DjContext::new(&query.pk, 2);
                let cols2: Vec<Vec<BigUint>> = block_results
                    .iter()
                    .map(|bres| bres.elements().iter().map(|c| c.as_plaintext()).collect())
                    .collect();
                let selected = matrix_select_with(&cols2, outer, &ctx2, &opts)
                    .map_err(|e| PpgnnError::BadAnswerEncoding(e.to_string()))?;
                Ok(AnswerMessage::TwoPhase(selected))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Variant;
    use ppgnn_paillier::{decrypt_vector, generate_keypair, Encryptor, FreshEncryptor};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid_db(side: u32) -> Vec<Poi> {
        (0..side * side)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(
                        (i % side) as f64 / side as f64,
                        (i / side) as f64 / side as f64,
                    ),
                )
            })
            .collect()
    }

    fn config() -> PpgnnConfig {
        PpgnnConfig {
            k: 3,
            d: 4,
            delta: 8,
            keysize: 128,
            sanitize: false,
            variant: Variant::Plain,
            ..PpgnnConfig::fast_test()
        }
    }

    #[test]
    fn plaintext_answer_is_black_box() {
        let lsp = Lsp::new(grid_db(10), config());
        let ans = lsp.plaintext_answer(&[Point::new(0.0, 0.0)], 3);
        assert_eq!(ans.len(), 3);
        assert_eq!(ans[0].id, 0);
    }

    #[test]
    fn naive_processing_selects_real_column() {
        // Naive variant: no partitioning, indicator picks an aligned column.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lsp = Lsp::new(grid_db(10), config());
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let codec = AnswerCodec::new(128, 1, 3);

        // Two users, 4 aligned columns; the real query is column 2.
        let sets = vec![
            LocationSetMessage {
                user_index: 0,
                locations: vec![
                    Point::new(0.9, 0.9),
                    Point::new(0.8, 0.1),
                    Point::new(0.1, 0.1),
                    Point::new(0.5, 0.9),
                ],
            },
            LocationSetMessage {
                user_index: 1,
                locations: vec![
                    Point::new(0.7, 0.2),
                    Point::new(0.3, 0.8),
                    Point::new(0.2, 0.2),
                    Point::new(0.6, 0.4),
                ],
            },
        ];
        let query = QueryMessage {
            k: 3,
            pk: pk.clone(),
            partition: None,
            indicator: IndicatorPayload::Plain(
                FreshEncryptor::seeded(ctx1.clone(), 91)
                    .encrypt_indicator(4, 2)
                    .unwrap(),
            ),
            theta0: 0.05,
        };
        let mut ledger = CostLedger::new();
        let answer = lsp
            .process_query(&query, &sets, &mut ledger, &mut rng)
            .unwrap();
        let AnswerMessage::Plain(enc) = answer else {
            panic!("expected plain")
        };
        let decoded = codec.decode(&decrypt_vector(&enc, &ctx1, &sk)).unwrap();

        let expected = lsp.plaintext_answer(&[Point::new(0.1, 0.1), Point::new(0.2, 0.2)], 3);
        assert_eq!(decoded.len(), 3);
        for (got, want) in decoded.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6);
        }
        assert_eq!(ledger.counter("kgnn_queries"), 4);
        assert!(ledger.lsp_cpu().as_nanos() > 0);
    }

    #[test]
    fn parallel_lsp_matches_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut cfg = config();
        cfg.sanitize = true; // exercise the threaded sanitation path too
        cfg.theta0 = 0.05;
        let sequential = Lsp::new(grid_db(10), cfg.clone());
        let parallel = Lsp::new(grid_db(10), cfg).with_parallelism(4);

        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let codec = AnswerCodec::new(128, 1, 3);
        let sets = vec![
            LocationSetMessage {
                user_index: 0,
                locations: vec![
                    Point::new(0.9, 0.9),
                    Point::new(0.8, 0.1),
                    Point::new(0.1, 0.1),
                    Point::new(0.5, 0.9),
                ],
            },
            LocationSetMessage {
                user_index: 1,
                locations: vec![
                    Point::new(0.7, 0.2),
                    Point::new(0.3, 0.8),
                    Point::new(0.2, 0.2),
                    Point::new(0.6, 0.4),
                ],
            },
        ];
        let query = QueryMessage {
            k: 3,
            pk: pk.clone(),
            partition: None,
            indicator: IndicatorPayload::Plain(
                FreshEncryptor::seeded(ctx1.clone(), 92)
                    .encrypt_indicator(4, 2)
                    .unwrap(),
            ),
            theta0: 0.05,
        };
        let decode = |lsp: &Lsp, rng: &mut ChaCha8Rng| {
            let mut ledger = CostLedger::new();
            let AnswerMessage::Plain(enc) =
                lsp.process_query(&query, &sets, &mut ledger, rng).unwrap()
            else {
                panic!("plain expected")
            };
            (
                codec.decode(&decrypt_vector(&enc, &ctx1, &sk)).unwrap(),
                ledger.counter("kgnn_queries"),
            )
        };
        let (seq_ans, seq_count) = decode(&sequential, &mut rng);
        let (par_ans, par_count) = decode(&parallel, &mut rng);
        assert_eq!(seq_count, par_count);
        // Sanitation sampling differs per thread, but both must return a
        // prefix of the same plaintext answer.
        let shorter = seq_ans.len().min(par_ans.len());
        for i in 0..shorter {
            assert!(seq_ans[i].dist(&par_ans[i]) < 1e-9);
        }
    }

    #[test]
    fn naive_crypto_selection_is_bit_identical() {
        // Straus + parallel selection vs the naive reference: same
        // indicator, same columns, identical ciphertext bytes.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let fast = Lsp::new(grid_db(10), config()).with_parallelism(4);
        let naive = Lsp::new(grid_db(10), config()).with_naive_crypto(true);
        let (pk, _) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let sets = vec![
            LocationSetMessage {
                user_index: 0,
                locations: vec![
                    Point::new(0.9, 0.9),
                    Point::new(0.8, 0.1),
                    Point::new(0.1, 0.1),
                    Point::new(0.5, 0.9),
                ],
            },
            LocationSetMessage {
                user_index: 1,
                locations: vec![
                    Point::new(0.7, 0.2),
                    Point::new(0.3, 0.8),
                    Point::new(0.2, 0.2),
                    Point::new(0.6, 0.4),
                ],
            },
        ];
        let query = QueryMessage {
            k: 3,
            pk: pk.clone(),
            partition: None,
            indicator: IndicatorPayload::Plain(
                FreshEncryptor::seeded(ctx1.clone(), 95)
                    .encrypt_indicator(4, 1)
                    .unwrap(),
            ),
            theta0: 0.05,
        };
        let run = |lsp: &Lsp| {
            let mut ledger = CostLedger::new();
            let AnswerMessage::Plain(enc) = lsp
                .process_query(
                    &query,
                    &sets,
                    &mut ledger,
                    &mut ChaCha8Rng::seed_from_u64(1),
                )
                .unwrap()
            else {
                panic!("plain expected")
            };
            enc
        };
        let a = run(&fast);
        let b = run(&naive);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.elements().iter().zip(b.elements()) {
            assert_eq!(x, y, "selection paths must be bit-identical");
        }
    }

    #[test]
    fn one_lsp_shared_across_threads() {
        // The server worker pool holds one `Arc<Lsp>`; concurrent
        // processing from plain threads must work and agree with the
        // sequential answer.
        use std::sync::Arc;
        let lsp = Arc::new(Lsp::new(grid_db(10), config()));
        let expected = lsp.plaintext_answer(&[Point::new(0.15, 0.2)], 3);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lsp = Arc::clone(&lsp);
                std::thread::spawn(move || lsp.plaintext_answer(&[Point::new(0.15, 0.2)], 3))
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(
                got.iter().map(|p| p.id).collect::<Vec<_>>(),
                expected.iter().map(|p| p.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn wrong_indicator_length_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lsp = Lsp::new(grid_db(5), config());
        let (pk, _) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let sets = vec![LocationSetMessage {
            user_index: 0,
            locations: vec![Point::ORIGIN; 4],
        }];
        let query = QueryMessage {
            k: 3,
            pk,
            partition: None,
            indicator: IndicatorPayload::Plain(
                FreshEncryptor::seeded(ctx1.clone(), 93)
                    .encrypt_indicator(3, 0)
                    .unwrap(),
            ),
            theta0: 0.05,
        };
        let mut ledger = CostLedger::new();
        assert!(matches!(
            lsp.process_query(&query, &sets, &mut ledger, &mut rng),
            Err(PpgnnError::BadIndicator {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn ragged_naive_location_sets_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lsp = Lsp::new(grid_db(5), config());
        let (pk, _) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let sets = vec![
            LocationSetMessage {
                user_index: 0,
                locations: vec![Point::ORIGIN; 4],
            },
            LocationSetMessage {
                user_index: 1,
                locations: vec![Point::ORIGIN; 3],
            },
        ];
        let query = QueryMessage {
            k: 3,
            pk,
            partition: None,
            indicator: IndicatorPayload::Plain(
                FreshEncryptor::seeded(ctx1.clone(), 94)
                    .encrypt_indicator(4, 0)
                    .unwrap(),
            ),
            theta0: 0.05,
        };
        let mut ledger = CostLedger::new();
        assert!(matches!(
            lsp.process_query(&query, &sets, &mut ledger, &mut rng),
            Err(PpgnnError::BadLocationSet { user: 1, .. })
        ));
    }
}
