//! Answer encoding (§3.2): each (possibly sanitized) answer is encoded as
//! a fixed-length vector of `m` big integers `< N`, zero-padded so every
//! column of the answer matrix `A` has the same height.
//!
//! Layout: record 0 is a count header (how many POIs the answer actually
//! holds — needed because sanitation truncates different candidates to
//! different lengths), followed by one 8-byte record per POI (quantized
//! coordinates, as in §8.1).

use ppgnn_bigint::BigUint;
use ppgnn_geo::{Poi, Point};
use ppgnn_paillier::packing::Packer;

use crate::error::PpgnnError;

/// Encoder/decoder for fixed-height answer columns.
#[derive(Debug, Clone, Copy)]
pub struct AnswerCodec {
    packer: Packer,
    /// Maximum POIs per answer (`k`).
    k: usize,
}

impl AnswerCodec {
    /// Creates a codec for answers of up to `k` POIs under a `key_bits`
    /// modulus at Damgård–Jurik level `s`.
    pub fn new(key_bits: usize, s: usize, k: usize) -> Self {
        AnswerCodec {
            packer: Packer::new(key_bits, s),
            k,
        }
    }

    /// The fixed column height `m` (count header + `k` records, packed).
    pub fn column_height(&self) -> usize {
        self.packer.packed_len(self.k + 1)
    }

    /// The per-answer payload capacity in POIs.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Encodes an answer (at most `k` POIs) into exactly
    /// [`AnswerCodec::column_height`] integers.
    ///
    /// # Panics
    /// Panics if `answer.len() > k`.
    pub fn encode(&self, answer: &[Poi]) -> Vec<BigUint> {
        assert!(
            answer.len() <= self.k,
            "answer of {} POIs exceeds k = {}",
            answer.len(),
            self.k
        );
        let mut records = Vec::with_capacity(self.k + 1);
        records.push(answer.len() as u64);
        records.extend(answer.iter().map(|p| p.encode_record()));
        records.resize(self.k + 1, 0);
        let packed = self.packer.pack(&records);
        debug_assert_eq!(packed.len(), self.column_height());
        packed
    }

    /// Decodes a column back into the POI locations it carries.
    pub fn decode(&self, column: &[BigUint]) -> Result<Vec<Point>, PpgnnError> {
        let records = self
            .packer
            .unpack(column, self.k + 1)
            .map_err(|e| PpgnnError::BadAnswerEncoding(e.to_string()))?;
        let count = records[0] as usize;
        if count > self.k {
            return Err(PpgnnError::BadAnswerEncoding(format!(
                "count header {count} exceeds k = {}",
                self.k
            )));
        }
        Ok(records[1..=count]
            .iter()
            .map(|&r| Poi::decode_record(r))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> AnswerCodec {
        AnswerCodec::new(256, 1, 8)
    }

    fn pois(n: usize) -> Vec<Poi> {
        (0..n)
            .map(|i| Poi::new(i as u32, Point::new(i as f64 / 10.0, 1.0 - i as f64 / 10.0)))
            .collect()
    }

    #[test]
    fn roundtrip_full_answer() {
        let c = codec();
        let answer = pois(8);
        let decoded = c.decode(&c.encode(&answer)).unwrap();
        assert_eq!(decoded.len(), 8);
        for (d, p) in decoded.iter().zip(&answer) {
            assert!(d.dist(&p.location) < 1e-8);
        }
    }

    #[test]
    fn roundtrip_truncated_answer() {
        // Sanitation may return fewer than k POIs; count header handles it.
        let c = codec();
        for len in 0..=8 {
            let answer = pois(len);
            let decoded = c.decode(&c.encode(&answer)).unwrap();
            assert_eq!(decoded.len(), len, "len={len}");
        }
    }

    #[test]
    fn column_height_is_uniform() {
        let c = codec();
        let h = c.column_height();
        assert_eq!(c.encode(&pois(0)).len(), h);
        assert_eq!(c.encode(&pois(8)).len(), h);
        // 256-bit key → 3 records per integer; 9 records → 3 integers.
        assert_eq!(h, 3);
    }

    #[test]
    fn paper_scale_column_height() {
        // 1024-bit key packs 15 records: k=8 → 9 records → m = 1 integer,
        // matching the paper's "15 POIs … encoded by a big integer".
        assert_eq!(AnswerCodec::new(1024, 1, 8).column_height(), 1);
        assert_eq!(AnswerCodec::new(1024, 1, 14).column_height(), 1);
        assert_eq!(AnswerCodec::new(1024, 1, 16).column_height(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds k")]
    fn oversized_answer_panics() {
        codec().encode(&pois(9));
    }

    #[test]
    fn corrupt_count_header_rejected() {
        let c = codec();
        let mut col = c.encode(&pois(2));
        // Overwrite the packed block holding the header with a huge count.
        col[0] = BigUint::from(1000u64);
        assert!(matches!(
            c.decode(&col),
            Err(PpgnnError::BadAnswerEncoding(_))
        ));
    }
}
