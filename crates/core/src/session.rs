//! A client-side session: the ergonomic entry point for applications.
//!
//! [`PpgnnSession`] owns what is reusable across queries — the Paillier
//! keypair and (optionally) pre-computed randomizer pools — and exposes
//! one-call queries against any [`Lsp`]. This is the API a downstream
//! app would embed; `run_ppgnn`/`run_ppgnn_with_keys` remain the
//! lower-level building blocks.

use ppgnn_geo::{Point, Rect};
use ppgnn_paillier::{generate_keypair, Keypair};
use ppgnn_sim::CostLedger;
use rand::Rng;

use crate::error::PpgnnError;
use crate::lsp::Lsp;
use crate::messages::AnswerMessage;
use crate::params::PpgnnConfig;
use crate::protocol::{
    decode_answer, plan_query_with, run_ppgnn_with_keys, ProtocolRun, QueryPlan, SessionCrypto,
};

/// A long-lived client session holding reusable key material and, when
/// the protocol enables `offline_randomness`, session-long
/// background-refilled randomizer pools ([`SessionCrypto`]): the refill
/// thread precomputes `r^{N^s}` between queries so the online plan is one
/// binomial + one mulmod per indicator element.
pub struct PpgnnSession {
    keys: Keypair,
    queries_issued: u64,
    /// Lazily built on the first planned query, rebuilt if the group size
    /// changes (pool sizing depends on δ′, which depends on `n`).
    crypto: Option<SessionCrypto>,
}

impl PpgnnSession {
    /// Creates a session with a fresh keypair of the given size.
    pub fn new<R: Rng + ?Sized>(keysize: usize, rng: &mut R) -> Self {
        PpgnnSession {
            keys: generate_keypair(keysize, rng),
            queries_issued: 0,
            crypto: None,
        }
    }

    /// Wraps an existing keypair (e.g. restored from storage).
    pub fn with_keys(keys: Keypair) -> Self {
        PpgnnSession {
            keys,
            queries_issued: 0,
            crypto: None,
        }
    }

    /// The session's public key.
    pub fn public_key(&self) -> &ppgnn_paillier::PublicKey {
        &self.keys.0
    }

    /// Queries issued so far.
    pub fn queries_issued(&self) -> u64 {
        self.queries_issued
    }

    /// Issues one group query against `lsp`.
    ///
    /// The session's key size must match the LSP's configured `keysize`
    /// (the cost model and packing depend on it).
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        lsp: &Lsp,
        real_locations: &[Point],
        rng: &mut R,
    ) -> Result<ProtocolRun, PpgnnError> {
        if self.keys.0.key_bits() != lsp.config().keysize {
            return Err(PpgnnError::InvalidConfig(format!(
                "session key is {} bits but the LSP expects {}",
                self.keys.0.key_bits(),
                lsp.config().keysize
            )));
        }
        let run = run_ppgnn_with_keys(lsp, real_locations, Some(&self.keys), rng)?;
        self.queries_issued += 1;
        Ok(run)
    }

    /// Builds the wire-ready [`QueryPlan`] for a *remote* LSP (Algorithm
    /// 1 only). Every successfully planned query — local or networked —
    /// increments [`PpgnnSession::queries_issued`].
    pub fn plan<R: Rng + ?Sized>(
        &mut self,
        config: &PpgnnConfig,
        space: Rect,
        real_locations: &[Point],
        rng: &mut R,
    ) -> Result<QueryPlan, PpgnnError> {
        if self.keys.0.key_bits() != config.keysize {
            return Err(PpgnnError::InvalidConfig(format!(
                "session key is {} bits but the protocol expects {}",
                self.keys.0.key_bits(),
                config.keysize
            )));
        }
        // Session pools amortize the offline randomizer precomputation
        // across the session's queries; (re)build them lazily when the
        // protocol wants offline randomness.
        if config.offline_randomness {
            let stale = self
                .crypto
                .as_ref()
                .map(|sc| sc.users() != real_locations.len())
                .unwrap_or(true);
            if stale {
                self.crypto = Some(SessionCrypto::new(
                    config,
                    real_locations.len(),
                    &self.keys.0,
                    Some(rng.gen()),
                )?);
            }
        } else {
            self.crypto = None;
        }
        // The remote client keeps its own wall-clock stats; the protocol
        // cost accounting of the plan is not surfaced here.
        let mut ledger = CostLedger::new();
        let plan = plan_query_with(
            config,
            space,
            real_locations,
            &self.keys,
            &mut ledger,
            rng,
            self.crypto.as_ref(),
        )?;
        self.queries_issued += 1;
        Ok(plan)
    }

    /// The session-long randomizer pools, if built (first planned query
    /// under `offline_randomness`).
    pub fn crypto(&self) -> Option<&SessionCrypto> {
        self.crypto.as_ref()
    }

    /// Decrypts and unpacks a remote LSP's answer to a planned query.
    pub fn decode(&self, k: usize, answer: &AnswerMessage) -> Result<Vec<Point>, PpgnnError> {
        let mut ledger = CostLedger::new();
        decode_answer(&self.keys, k, answer, &mut ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PpgnnConfig;
    use ppgnn_geo::Poi;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Poi> {
        (0..100)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0),
                )
            })
            .collect()
    }

    fn cfg() -> PpgnnConfig {
        PpgnnConfig {
            k: 2,
            d: 3,
            delta: 6,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        }
    }

    #[test]
    fn session_issues_repeated_queries() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut session = PpgnnSession::new(128, &mut rng);
        let lsp = Lsp::new(db(), cfg());
        for i in 0..3 {
            let users = vec![Point::new(0.1 * i as f64, 0.5), Point::new(0.5, 0.5)];
            let run = session.query(&lsp, &users, &mut rng).unwrap();
            assert_eq!(run.answer.len(), 2);
        }
        assert_eq!(session.queries_issued(), 3);
    }

    #[test]
    fn key_size_mismatch_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut session = PpgnnSession::new(96, &mut rng);
        let lsp = Lsp::new(db(), cfg()); // expects 128
        let users = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.6)];
        assert!(matches!(
            session.query(&lsp, &users, &mut rng),
            Err(PpgnnError::InvalidConfig(_))
        ));
        assert_eq!(session.queries_issued(), 0);
    }

    #[test]
    fn planned_queries_count_toward_queries_issued() {
        // The networked path (plan + decode) must hit the same counter as
        // the in-process path.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut session = PpgnnSession::new(128, &mut rng);
        let lsp = Lsp::new(db(), cfg());
        let users = vec![Point::new(0.1, 0.2), Point::new(0.4, 0.4)];
        let plan = session
            .plan(lsp.config(), lsp.space(), &users, &mut rng)
            .unwrap();
        assert_eq!(session.queries_issued(), 1);
        // Drive the plan against the in-process LSP and decode.
        let mut ledger = CostLedger::new();
        let answer_msg = lsp
            .process_query(&plan.query, &plan.location_sets, &mut ledger, &mut rng)
            .unwrap();
        let answer = session.decode(lsp.config().k, &answer_msg).unwrap();
        let expected = lsp.plaintext_answer(&users, lsp.config().k);
        assert_eq!(answer.len(), expected.len());
        for (got, want) in answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6);
        }
        // The in-process convenience path keeps counting from there.
        session.query(&lsp, &users, &mut rng).unwrap();
        assert_eq!(session.queries_issued(), 2);
    }

    #[test]
    fn failed_plans_do_not_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut session = PpgnnSession::new(96, &mut rng);
        let lsp = Lsp::new(db(), cfg()); // expects 128-bit keys
        let users = vec![Point::new(0.5, 0.5)];
        assert!(session
            .plan(lsp.config(), lsp.space(), &users, &mut rng)
            .is_err());
        assert_eq!(session.queries_issued(), 0);
    }

    #[test]
    fn session_pools_serve_repeated_plans() {
        // With offline randomness on, the session builds background
        // pools on the first plan and reuses them; answers stay exact.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut session = PpgnnSession::new(128, &mut rng);
        let config = PpgnnConfig {
            offline_randomness: true,
            ..cfg()
        };
        let lsp = Lsp::new(db(), config.clone());
        let users = vec![Point::new(0.2, 0.3), Point::new(0.6, 0.4)];
        for _ in 0..3 {
            let plan = session
                .plan(&config, lsp.space(), &users, &mut rng)
                .unwrap();
            let mut ledger = CostLedger::new();
            let answer_msg = lsp
                .process_query(&plan.query, &plan.location_sets, &mut ledger, &mut rng)
                .unwrap();
            let answer = session.decode(config.k, &answer_msg).unwrap();
            let expected = lsp.plaintext_answer(&users, config.k);
            for (got, want) in answer.iter().zip(&expected) {
                assert!(got.dist(&want.location) < 1e-6);
            }
        }
        let crypto = session.crypto().expect("pools built on first plan");
        assert_eq!(crypto.users(), 2);
        // Let the refill thread top the pools back up: next plan should
        // be hits again (can't assert counters here, but readiness must
        // converge — wait_until_ready would hang otherwise).
        crypto.wait_until_ready();
    }

    #[test]
    fn restored_keys_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let keys = generate_keypair(128, &mut rng);
        let mut session = PpgnnSession::with_keys(keys.clone());
        assert_eq!(session.public_key(), &keys.0);
        let lsp = Lsp::new(db(), cfg());
        let users = vec![Point::new(0.2, 0.2), Point::new(0.3, 0.3)];
        assert!(session.query(&lsp, &users, &mut rng).is_ok());
    }
}
