//! The inequality attack of §5.1 — implemented from the *attacker's*
//! perspective, exactly as `n − 1` colluding users would run it.
//!
//! Given the ranked answer `P = {p₁, …, p_k}` and the colluders' own
//! locations, the target's location must satisfy the `k − 1` inequalities
//! `F(p_i, C) ≤ F(p_{i+1}, C)` (Eqn 14), where only the target's location
//! is unknown. The feasible region's relative area `θ` is estimated by
//! uniform Monte-Carlo sampling; the attack *succeeds* when `θ ≤ θ₀`.
//!
//! The same machinery powers LSP's sanitation (§5.2), which simulates the
//! attack before releasing each answer prefix.

use ppgnn_geo::{Aggregate, Poi, Point, Rect};
use rand::Rng;

/// The inequality system of Eqn 14 for one (answer, colluders) pair, with
/// per-POI colluder aggregates precomputed so that testing a candidate
/// target location costs O(1) distance evaluations per inequality.
#[derive(Debug, Clone)]
pub struct InequalitySystem {
    agg: Aggregate,
    /// Per ranked POI: (aggregate over colluders only, POI location).
    entries: Vec<(f64, Point)>,
}

impl InequalitySystem {
    /// Builds the system for a ranked `answer` and the colluders'
    /// locations (the group minus the target user). `colluders` may be
    /// empty (n = 1), in which case `F` degenerates to the target's own
    /// distance.
    pub fn new(answer: &[Poi], colluders: &[Point], agg: Aggregate) -> Self {
        let entries = answer
            .iter()
            .map(|p| {
                let dists = colluders.iter().map(|c| p.location.dist(c));
                let stat = match agg {
                    Aggregate::Sum => dists.sum::<f64>(),
                    Aggregate::Max => dists.fold(f64::NEG_INFINITY, f64::max),
                    Aggregate::Min => dists.fold(f64::INFINITY, f64::min),
                };
                (stat, p.location)
            })
            .collect();
        InequalitySystem { agg, entries }
    }

    /// Number of inequalities (`answer.len() − 1`).
    pub fn len(&self) -> usize {
        self.entries.len().saturating_sub(1)
    }

    /// `true` iff the system has no inequalities (answers of length ≤ 1
    /// constrain nothing — why the shortest prefix is always safe).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `F(p_i, colluders ∪ {x})` for ranked POI `i`.
    fn cost(&self, i: usize, x: &Point) -> f64 {
        let (stat, loc) = self.entries[i];
        let own = loc.dist(x);
        match self.agg {
            Aggregate::Sum => stat + own,
            Aggregate::Max => stat.max(own),
            Aggregate::Min => stat.min(own),
        }
    }

    /// Does candidate target location `x` satisfy inequality `i`
    /// (`F(p_i) ≤ F(p_{i+1})`)?
    pub fn satisfies(&self, i: usize, x: &Point) -> bool {
        self.cost(i, x) <= self.cost(i + 1, x)
    }

    /// Does `x` satisfy *all* inequalities (lie in the feasible region)?
    pub fn satisfies_all(&self, x: &Point) -> bool {
        (0..self.len()).all(|i| self.satisfies(i, x))
    }
}

/// Monte-Carlo estimate of `θ`: the fraction of `space` consistent with
/// the ranked answer from the colluders' viewpoint.
pub fn feasible_region_fraction<R: Rng + ?Sized>(
    answer: &[Poi],
    colluders: &[Point],
    agg: Aggregate,
    space: &Rect,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let system = InequalitySystem::new(answer, colluders, agg);
    if system.is_empty() {
        return 1.0; // no constraints: the target could be anywhere
    }
    let mut hits = 0usize;
    for _ in 0..samples {
        let x = sample_point(space, rng);
        if system.satisfies_all(&x) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// The attack verdict: `θ ≤ θ₀` means the target's location has been
/// narrowed below the Privacy IV threshold — the attack *succeeds*.
pub fn inequality_attack_succeeds<R: Rng + ?Sized>(
    answer: &[Poi],
    colluders: &[Point],
    agg: Aggregate,
    space: &Rect,
    theta0: f64,
    samples: usize,
    rng: &mut R,
) -> bool {
    feasible_region_fraction(answer, colluders, agg, space, samples, rng) <= theta0
}

/// Uniform sample inside a rectangle.
pub(crate) fn sample_point<R: Rng + ?Sized>(space: &Rect, rng: &mut R) -> Point {
    Point::new(
        space.min_x + rng.gen::<f64>() * space.width(),
        space.min_y + rng.gen::<f64>() * space.height(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_poi_answer_constrains_nothing() {
        let answer = [Poi::new(0, Point::new(0.5, 0.5))];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let theta = feasible_region_fraction(
            &answer,
            &[Point::new(0.2, 0.2)],
            Aggregate::Sum,
            &Rect::UNIT,
            1000,
            &mut rng,
        );
        assert_eq!(theta, 1.0);
    }

    #[test]
    fn n1_ranked_pair_halves_the_space() {
        // Single user (no colluders), two ranked POIs at mirrored
        // positions: the user must be in the half-plane nearer p₁.
        let answer = [
            Poi::new(0, Point::new(0.25, 0.5)),
            Poi::new(1, Point::new(0.75, 0.5)),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let theta =
            feasible_region_fraction(&answer, &[], Aggregate::Sum, &Rect::UNIT, 20_000, &mut rng);
        assert!((theta - 0.5).abs() < 0.02, "got {theta}");
    }

    #[test]
    fn more_inequalities_shrink_the_region() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // A fan of POIs around the target narrows it down progressively.
        let target = Point::new(0.3, 0.4);
        let colluders = vec![Point::new(0.9, 0.9)];
        let pois: Vec<Poi> = (0..6)
            .map(|i| {
                let angle = i as f64;
                Poi::new(
                    i,
                    Point::new(
                        (target.x + 0.05 * (i as f64 + 1.0) * angle.cos()).clamp(0.0, 1.0),
                        (target.y + 0.05 * (i as f64 + 1.0) * angle.sin()).clamp(0.0, 1.0),
                    ),
                )
            })
            .collect();
        // Rank them by true aggregate cost so the inequalities are
        // consistent with a real query from (target, colluders).
        let mut query = colluders.clone();
        query.push(target);
        let mut ranked = pois;
        ranked.sort_by(|a, b| {
            Aggregate::Sum
                .eval(&a.location, &query)
                .total_cmp(&Aggregate::Sum.eval(&b.location, &query))
        });
        let theta2 = feasible_region_fraction(
            &ranked[..2],
            &colluders,
            Aggregate::Sum,
            &Rect::UNIT,
            5000,
            &mut rng,
        );
        let theta6 = feasible_region_fraction(
            &ranked,
            &colluders,
            Aggregate::Sum,
            &Rect::UNIT,
            5000,
            &mut rng,
        );
        assert!(
            theta6 <= theta2 + 1e-9,
            "theta must shrink: {theta2} -> {theta6}"
        );
    }

    #[test]
    fn true_target_always_feasible() {
        // The target's real location always satisfies a correctly ranked
        // answer — the attack region always contains the truth.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for agg in Aggregate::ALL {
            let target = Point::new(0.62, 0.17);
            let colluders = vec![Point::new(0.1, 0.8), Point::new(0.4, 0.4)];
            let mut query = colluders.clone();
            query.push(target);
            let mut pois: Vec<Poi> = (0..8)
                .map(|i| Poi::new(i, sample_point(&Rect::UNIT, &mut rng)))
                .collect();
            pois.sort_by(|a, b| {
                agg.eval(&a.location, &query)
                    .total_cmp(&agg.eval(&b.location, &query))
            });
            let system = InequalitySystem::new(&pois, &colluders, agg);
            assert!(system.satisfies_all(&target), "{agg}");
        }
    }

    #[test]
    fn satisfies_matches_direct_aggregate_comparison() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for agg in Aggregate::ALL {
            let colluders = vec![Point::new(0.2, 0.9), Point::new(0.7, 0.3)];
            let pois = [
                Poi::new(0, Point::new(0.4, 0.6)),
                Poi::new(1, Point::new(0.8, 0.1)),
            ];
            let system = InequalitySystem::new(&pois, &colluders, agg);
            for _ in 0..200 {
                let x = sample_point(&Rect::UNIT, &mut rng);
                let mut query = colluders.clone();
                query.push(x);
                let direct =
                    agg.eval(&pois[0].location, &query) <= agg.eval(&pois[1].location, &query);
                assert_eq!(system.satisfies(0, &x), direct, "{agg}");
            }
        }
    }

    #[test]
    fn attack_verdict_thresholds() {
        let answer = [
            Poi::new(0, Point::new(0.25, 0.5)),
            Poi::new(1, Point::new(0.75, 0.5)),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // θ ≈ 0.5: attack fails against θ0 = 0.05, succeeds against 0.9.
        assert!(!inequality_attack_succeeds(
            &answer,
            &[],
            Aggregate::Sum,
            &Rect::UNIT,
            0.05,
            10_000,
            &mut rng
        ));
        assert!(inequality_attack_succeeds(
            &answer,
            &[],
            Aggregate::Sum,
            &Rect::UNIT,
            0.9,
            10_000,
            &mut rng
        ));
    }
}
