//! Pre-computed partition parameters.
//!
//! §4.1: "the results for frequently used (n, d, δ) can be precomputed
//! off line (e.g., using open-source solvers…). This only needs to be
//! done once." [`PartitionTable`] is that artifact — a serializable
//! lookup table — and [`solve_partition_cached`] is a process-global
//! memo the protocol driver uses so repeated queries never re-solve.

use std::collections::HashMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::error::PpgnnError;
use crate::partition::{solve_partition, PartitionParams};

/// A serializable table of solved instances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartitionTable {
    entries: Vec<((usize, usize, usize), PartitionParams)>,
}

impl PartitionTable {
    /// Solves every `(n, d, δ)` combination of the given axes, skipping
    /// infeasible ones (δ > d^n).
    pub fn precompute(ns: &[usize], ds: &[usize], deltas: &[usize]) -> Self {
        let mut entries = Vec::new();
        for &n in ns {
            for &d in ds {
                for &delta in deltas {
                    if let Ok(p) = solve_partition(n, d, delta) {
                        entries.push(((n, d, delta), p));
                    }
                }
            }
        }
        PartitionTable { entries }
    }

    /// The table covering the paper's whole experimental grid (Table 3).
    pub fn paper_grid() -> Self {
        Self::precompute(
            &[1, 2, 4, 8, 16, 32],
            &[5, 15, 25, 35, 50],
            &[25, 50, 100, 150, 200],
        )
    }

    /// Number of solved instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a solved instance.
    pub fn get(&self, n: usize, d: usize, delta: usize) -> Option<&PartitionParams> {
        self.entries
            .iter()
            .find(|((en, ed, edelta), _)| *en == n && *ed == d && *edelta == delta)
            .map(|(_, p)| p)
    }

    /// JSON serialization (ship the table to mobile clients once).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("table serializes")
    }

    /// JSON deserialization.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Cache key and store types for the process-global memo.
type CacheKey = (usize, usize, usize);
type CacheStore = Option<HashMap<CacheKey, PartitionParams>>;

/// Process-global memoized solver: the first query for an `(n, d, δ)`
/// pays the solve; every later query is a lookup. Matches the paper's
/// offline-pre-computation assumption while staying exact for novel
/// configurations.
pub fn solve_partition_cached(
    n: usize,
    d: usize,
    delta: usize,
) -> Result<PartitionParams, PpgnnError> {
    static CACHE: Mutex<CacheStore> = Mutex::new(None);
    let mut guard = CACHE.lock().expect("partition cache lock");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(p) = cache.get(&(n, d, delta)) {
        return Ok(p.clone());
    }
    let solved = solve_partition(n, d, delta)?;
    cache.insert((n, d, delta), solved.clone());
    Ok(solved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precompute_and_lookup() {
        let table = PartitionTable::precompute(&[2, 4], &[4, 5], &[8, 16]);
        assert!(!table.is_empty());
        let p = table.get(2, 4, 8).expect("feasible instance solved");
        assert!(p.delta_prime() >= 8);
        assert_eq!(table.get(3, 4, 8), None, "axis value not requested");
    }

    #[test]
    fn infeasible_instances_skipped() {
        // n=1, δ > d is infeasible and must simply be absent.
        let table = PartitionTable::precompute(&[1], &[4], &[8]);
        assert!(table.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let table = PartitionTable::precompute(&[2], &[5], &[10, 25]);
        let back = PartitionTable::from_json(&table.to_json()).unwrap();
        assert_eq!(back.len(), table.len());
        assert_eq!(back.get(2, 5, 10), table.get(2, 5, 10));
    }

    #[test]
    fn cached_solver_agrees_and_is_fast_on_repeat() {
        let direct = solve_partition(8, 25, 100).unwrap();
        let first = solve_partition_cached(8, 25, 100).unwrap();
        assert_eq!(first.delta_prime(), direct.delta_prime());
        // Warm hit must be near-instant even for the heaviest instance.
        let _ = solve_partition_cached(32, 50, 200).unwrap();
        let t0 = std::time::Instant::now();
        let again = solve_partition_cached(32, 50, 200).unwrap();
        assert!(t0.elapsed().as_micros() < 5_000, "cache hit too slow");
        assert!(again.delta_prime() >= 200);
    }

    #[test]
    fn cached_solver_propagates_errors() {
        assert!(solve_partition_cached(1, 5, 100).is_err());
    }

    #[test]
    fn paper_grid_reasonable_size() {
        let table = PartitionTable::paper_grid();
        // 6×5×5 = 150 combinations; many are feasible.
        assert!(table.len() > 60, "got {}", table.len());
        assert!(table.len() <= 150);
    }
}
