//! Candidate-query generation (§4.1) and the query index (Eqn 12).
//!
//! LSP receives one length-`d` location set per user plus the partition
//! parameters, and deterministically expands them into the *candidate
//! query list* — `δ′ = Σ_i d̄_i^α` queries of `n` locations each, listed
//! in lexicographic order of (segment, per-subgroup position tuples). One
//! of them — at an index only the users can compute — is the real query.

use ppgnn_geo::Point;

use crate::error::PpgnnError;
use crate::partition::PartitionParams;

/// One candidate query: a location per user, in user order.
pub type CandidateQuery = Vec<Point>;

/// Generates the full candidate query list from the users' location sets.
///
/// `location_sets[i]` is user `i`'s set `L_i` (each of length `d`).
/// For segment `i`, the queries are the cartesian product over subgroups
/// of the segment's positions (Eqn 6): every subgroup independently picks
/// one position `t_j ∈ [0, d̄_i)`, and all of the subgroup's users
/// contribute the location at that absolute position.
pub fn candidate_queries(
    location_sets: &[Vec<Point>],
    params: &PartitionParams,
) -> Result<Vec<CandidateQuery>, PpgnnError> {
    let d: usize = params.segment_sizes.iter().sum();
    for (i, set) in location_sets.iter().enumerate() {
        if set.len() != d {
            return Err(PpgnnError::BadLocationSet {
                user: i,
                expected: d,
                got: set.len(),
            });
        }
    }
    let n = location_sets.len();
    let alpha = params.alpha();
    // user -> subgroup resolved once.
    let subgroup: Vec<usize> = (0..n).map(|u| params.subgroup_of(u)).collect();

    let mut out = Vec::with_capacity(params.delta_prime() as usize);
    for (seg, &seg_size) in params.segment_sizes.iter().enumerate() {
        let offset = params.segment_offset(seg);
        // Odometer over (t_1, …, t_α) ∈ [0, seg_size)^α in lexicographic
        // order (t_1 most significant), matching Eqn 12's weighting.
        let mut positions = vec![0usize; alpha];
        loop {
            let query: CandidateQuery = (0..n)
                .map(|u| location_sets[u][offset + positions[subgroup[u]]])
                .collect();
            out.push(query);

            // Advance the odometer (least-significant digit = t_α).
            let mut digit = alpha;
            loop {
                if digit == 0 {
                    break;
                }
                digit -= 1;
                positions[digit] += 1;
                if positions[digit] < seg_size {
                    break;
                }
                positions[digit] = 0;
                if digit == 0 {
                    break;
                }
            }
            if positions.iter().all(|&p| p == 0) {
                break;
            }
        }
    }
    debug_assert_eq!(out.len() as u128, params.delta_prime());
    Ok(out)
}

/// Eqn 12: the 0-based index of the real query in the candidate list,
/// given the chosen segment `seg` (0-based) and the per-subgroup relative
/// positions `x` (0-based, length `α`).
///
/// The paper's formula (1-based) is
/// `QI = Σ_{i<seg} d̄_i^α + Σ_j x_j·d̄_seg^(α−j) + 1`; we return `QI − 1`.
pub fn query_index(params: &PartitionParams, seg: usize, x: &[usize]) -> usize {
    assert_eq!(x.len(), params.alpha(), "one position per subgroup");
    let alpha = params.alpha();
    let seg_size = params.segment_sizes[seg];
    let before: u128 = params.segment_sizes[..seg]
        .iter()
        .map(|&s| (s as u128).saturating_pow(alpha as u32))
        .sum();
    let mut within: u128 = 0;
    for (j, &xj) in x.iter().enumerate() {
        assert!(
            xj < seg_size,
            "position {xj} outside segment of size {seg_size}"
        );
        within = within * seg_size as u128 + xj as u128;
        debug_assert!(j < alpha);
    }
    (before + within) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionParams;

    /// The Figure 3/4 running example: n=4, d=4, n̄=(2,2), d̄=(2,2).
    fn example() -> (Vec<Vec<Point>>, PartitionParams) {
        let params = PartitionParams {
            subgroup_sizes: vec![2, 2],
            segment_sizes: vec![2, 2],
        };
        // location_sets[i][j] encoded as Point(i, j) so assertions can
        // check exactly which slot each candidate pulled.
        let sets: Vec<Vec<Point>> = (0..4)
            .map(|i| (0..4).map(|j| Point::new(i as f64, j as f64)).collect())
            .collect();
        (sets, params)
    }

    #[test]
    fn figure_3_candidate_count_and_order() {
        let (sets, params) = example();
        let cands = candidate_queries(&sets, &params).unwrap();
        assert_eq!(cands.len(), 8);
        // First candidate: segment 0, t=(0,0) -> everyone's slot 0.
        assert_eq!(
            cands[0],
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ]
        );
        // Second candidate: segment 0, t=(0,1): subgroup 2 (users 2,3) at
        // slot 1, subgroup 1 (users 0,1) still at slot 0.
        assert_eq!(
            cands[1],
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 1.0),
                Point::new(3.0, 1.0),
            ]
        );
        // Candidate 4 (index 4): first of segment 1 -> everyone's slot 2.
        assert_eq!(
            cands[4],
            vec![
                Point::new(0.0, 2.0),
                Point::new(1.0, 2.0),
                Point::new(2.0, 2.0),
                Point::new(3.0, 2.0),
            ]
        );
    }

    #[test]
    fn example_4_2_query_index() {
        // seg=2 (1-based) with x=(2,1) (1-based) gives QI=7 (1-based),
        // i.e. index 6 in 0-based terms.
        let (_, params) = example();
        assert_eq!(query_index(&params, 1, &[1, 0]), 6);
    }

    #[test]
    fn index_points_at_real_query_everywhere() {
        // For every (seg, x), the candidate at query_index must equal the
        // query built from those positions.
        let (sets, params) = example();
        let cands = candidate_queries(&sets, &params).unwrap();
        for seg in 0..params.beta() {
            let size = params.segment_sizes[seg];
            let offset = params.segment_offset(seg);
            for x1 in 0..size {
                for x2 in 0..size {
                    let qi = query_index(&params, seg, &[x1, x2]);
                    let expected = vec![
                        sets[0][offset + x1],
                        sets[1][offset + x1],
                        sets[2][offset + x2],
                        sets[3][offset + x2],
                    ];
                    assert_eq!(cands[qi], expected, "seg={seg} x=({x1},{x2})");
                }
            }
        }
    }

    #[test]
    fn uneven_segments_and_subgroups() {
        let params = PartitionParams {
            subgroup_sizes: vec![2, 1],
            segment_sizes: vec![3, 2],
        };
        let sets: Vec<Vec<Point>> = (0..3)
            .map(|i| (0..5).map(|j| Point::new(i as f64, j as f64)).collect())
            .collect();
        let cands = candidate_queries(&sets, &params).unwrap();
        assert_eq!(cands.len() as u128, params.delta_prime());
        assert_eq!(cands.len(), 9 + 4);
        // Cross-check every index.
        for seg in 0..2 {
            let size = params.segment_sizes[seg];
            let offset = params.segment_offset(seg);
            for x1 in 0..size {
                for x2 in 0..size {
                    let qi = query_index(&params, seg, &[x1, x2]);
                    let expected = vec![
                        sets[0][offset + x1],
                        sets[1][offset + x1],
                        sets[2][offset + x2],
                    ];
                    assert_eq!(cands[qi], expected);
                }
            }
        }
    }

    #[test]
    fn single_user_unit_segments() {
        // n=1 with unit segments: the candidate list is exactly the
        // location set (the §3 single-user protocol).
        let params = PartitionParams {
            subgroup_sizes: vec![1],
            segment_sizes: vec![1; 4],
        };
        let set: Vec<Point> = (0..4).map(|j| Point::new(0.0, j as f64)).collect();
        let cands = candidate_queries(std::slice::from_ref(&set), &params).unwrap();
        assert_eq!(cands.len(), 4);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c, &vec![set[i]]);
            assert_eq!(query_index(&params, i, &[0]), i);
        }
    }

    #[test]
    fn wrong_length_location_set_rejected() {
        let (mut sets, params) = example();
        sets[2].pop();
        assert!(matches!(
            candidate_queries(&sets, &params),
            Err(PpgnnError::BadLocationSet { user: 2, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "outside segment")]
    fn query_index_validates_positions() {
        let (_, params) = example();
        let _ = query_index(&params, 0, &[2, 0]);
    }
}
