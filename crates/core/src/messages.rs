//! Wire messages with exact byte accounting.
//!
//! The simulation passes Rust structs around instead of serialized bytes,
//! but every message knows its exact wire width so the communication
//! ledger reproduces the paper's cost model: a location costs `L_l`
//! bytes, an ε_s ciphertext `(s+1)·keysize/8` bytes, scalars 4 bytes.

use ppgnn_geo::Point;
use ppgnn_paillier::{EncryptedVector, PublicKey};
use ppgnn_sim::{LOCATION_BYTES, SCALAR_BYTES};

use crate::partition::PartitionParams;

/// The encrypted indicator(s) sent by the coordinator.
#[derive(Debug, Clone)]
pub enum IndicatorPayload {
    /// PPGNN / Naive: one ε₁ indicator of length `δ′`.
    Plain(EncryptedVector),
    /// PPGNN-OPT (§6): `[v₁]` (ε₁, length `δ′/ω`) selects the position
    /// within a block, `[[v₂]]` (ε₂, length `ω`) selects the block.
    TwoPhase {
        inner: EncryptedVector,
        outer: EncryptedVector,
    },
}

impl IndicatorPayload {
    /// Wire width in bytes.
    pub fn byte_len(&self, pk: &PublicKey) -> usize {
        match self {
            IndicatorPayload::Plain(v) => v.len() * pk.ciphertext_bytes(1),
            IndicatorPayload::TwoPhase { inner, outer } => {
                inner.len() * pk.ciphertext_bytes(1) + outer.len() * pk.ciphertext_bytes(2)
            }
        }
    }
}

/// The coordinator's query (Algorithm 1 line 11):
/// `{k, pk, n̄, d̄, [v], θ₀}`.
#[derive(Debug, Clone)]
pub struct QueryMessage {
    /// POIs to retrieve.
    pub k: usize,
    /// The Paillier public key.
    pub pk: PublicKey,
    /// Partition parameters; `None` for the Naive variant (aligned
    /// candidate columns, no partitioning).
    pub partition: Option<PartitionParams>,
    /// Encrypted indicator vector(s).
    pub indicator: IndicatorPayload,
    /// Privacy IV parameter.
    pub theta0: f64,
}

impl QueryMessage {
    /// Wire width in bytes: `k` + pk (modulus) + partition vectors +
    /// indicator ciphertexts + θ₀.
    pub fn byte_len(&self) -> usize {
        let partition_bytes = self
            .partition
            .as_ref()
            .map(|p| (p.alpha() + p.beta() + 2) * SCALAR_BYTES)
            .unwrap_or(0);
        SCALAR_BYTES                       // k
            + self.pk.key_bits().div_ceil(8) // pk modulus
            + partition_bytes
            + self.indicator.byte_len(&self.pk)
            + 8 // theta0 (f64)
    }
}

/// One user's location set (Algorithm 1 line 15): `(i, L_i)`.
#[derive(Debug, Clone)]
pub struct LocationSetMessage {
    /// The user's index in the group (lets LSP rebuild subgroups).
    pub user_index: usize,
    /// The locations, with the real one at the broadcast position.
    pub locations: Vec<Point>,
}

impl LocationSetMessage {
    /// Wire width: user id + locations.
    pub fn byte_len(&self) -> usize {
        SCALAR_BYTES + self.locations.len() * LOCATION_BYTES
    }
}

/// LSP's reply: the privately selected encrypted answer `[a_*]`.
#[derive(Debug, Clone)]
pub enum AnswerMessage {
    /// PPGNN / Naive: `m` ε₁ ciphertexts.
    Plain(EncryptedVector),
    /// PPGNN-OPT: `m` ε₂ ciphertexts (doubly-encrypted answer).
    TwoPhase(EncryptedVector),
}

impl AnswerMessage {
    /// Wire width in bytes.
    pub fn byte_len(&self, pk: &PublicKey) -> usize {
        match self {
            AnswerMessage::Plain(v) => v.len() * pk.ciphertext_bytes(1),
            AnswerMessage::TwoPhase(v) => v.len() * pk.ciphertext_bytes(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_paillier::{generate_keypair, DjContext};

    /// Same call shape as the retired free function, built on the
    /// unified `Encryptor` API.
    fn encrypt_indicator<R: rand::Rng + ?Sized>(
        len: usize,
        pos: usize,
        ctx: &DjContext,
        rng: &mut R,
    ) -> ppgnn_paillier::EncryptedVector {
        use ppgnn_paillier::{Encryptor, FreshEncryptor};
        use rand::SeedableRng;
        FreshEncryptor::with_rng(ctx.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()))
            .encrypt_indicator(len, pos)
            .unwrap()
    }

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (PublicKey, DjContext, DjContext, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (pk, _) = generate_keypair(128, &mut rng);
        let c1 = DjContext::new(&pk, 1);
        let c2 = DjContext::new(&pk, 2);
        (pk, c1, c2, rng)
    }

    #[test]
    fn plain_indicator_bytes() {
        let (pk, c1, _, mut rng) = setup();
        let ind = IndicatorPayload::Plain(encrypt_indicator(10, 3, &c1, &mut rng));
        // 128-bit key: ε₁ ciphertext = 32 bytes.
        assert_eq!(ind.byte_len(&pk), 10 * 32);
    }

    #[test]
    fn two_phase_indicator_bytes() {
        let (pk, c1, c2, mut rng) = setup();
        let ind = IndicatorPayload::TwoPhase {
            inner: encrypt_indicator(5, 0, &c1, &mut rng),
            outer: encrypt_indicator(2, 1, &c2, &mut rng),
        };
        // ε₂ ciphertext = 48 bytes: exactly 1.5× ε₁ (the paper rounds to 2×).
        assert_eq!(ind.byte_len(&pk), 5 * 32 + 2 * 48);
    }

    #[test]
    fn query_message_bytes_accumulate() {
        let (pk, c1, _, mut rng) = setup();
        let msg = QueryMessage {
            k: 8,
            pk: pk.clone(),
            partition: Some(crate::partition::PartitionParams {
                subgroup_sizes: vec![2, 2],
                segment_sizes: vec![2, 2],
            }),
            indicator: IndicatorPayload::Plain(encrypt_indicator(8, 6, &c1, &mut rng)),
            theta0: 0.05,
        };
        let expected = 4 + 16 + (2 + 2 + 2) * 4 + 8 * 32 + 8;
        assert_eq!(msg.byte_len(), expected);
    }

    #[test]
    fn location_set_bytes() {
        let msg = LocationSetMessage {
            user_index: 3,
            locations: vec![Point::ORIGIN; 25],
        };
        assert_eq!(msg.byte_len(), 4 + 25 * 16);
    }

    #[test]
    fn answer_bytes_by_level() {
        let (pk, c1, c2, mut rng) = setup();
        let plain = AnswerMessage::Plain(encrypt_indicator(3, 0, &c1, &mut rng));
        assert_eq!(plain.byte_len(&pk), 3 * 32);
        let two = AnswerMessage::TwoPhase(encrypt_indicator(3, 0, &c2, &mut rng));
        assert_eq!(two.byte_len(&pk), 3 * 48);
    }
}
