//! A versioned, incrementally mutable LSP (§1's dynamic-database claim
//! as a live subsystem).
//!
//! Consistency model: one *master* [`DynamicRTree`] receives mutations
//! under a writer mutex; after every batch the master is cloned, frozen
//! into a [`SnapshotEngine`], and *published* as an immutable
//! `Arc<Lsp>` tagged with a monotonically increasing version. Queries
//! pin the published snapshot at dispatch time and never observe a
//! half-applied batch; writers never wait for in-flight queries.

use std::sync::{Arc, Mutex, RwLock};

use ppgnn_geo::{DynamicRTree, Poi, PoiOp, Rect};
use ppgnn_telemetry as telemetry;

use crate::engine::SnapshotEngine;
use crate::lsp::Lsp;
use crate::params::PpgnnConfig;

/// The first published version. 0 is reserved as "no version" on the
/// wire (e.g. a subscription that predates any mutation).
const INITIAL_VERSION: u64 = 1;

/// A handle to a dynamic POI database behind versioned LSP snapshots.
pub struct DynamicLsp {
    /// The mutable source of truth. Held only while applying a batch.
    master: Mutex<DynamicRTree>,
    /// The current published snapshot and its version.
    published: RwLock<(Arc<Lsp>, u64)>,
    config: PpgnnConfig,
    space: Rect,
    parallelism: usize,
    naive_crypto: bool,
}

impl DynamicLsp {
    /// Bulk-loads the initial database and publishes version 1.
    pub fn new(pois: Vec<Poi>, config: PpgnnConfig) -> Self {
        Self::with_space(pois, config, Rect::UNIT)
    }

    /// As [`DynamicLsp::new`] with an explicit data space.
    pub fn with_space(pois: Vec<Poi>, config: PpgnnConfig, space: Rect) -> Self {
        Self::restore(pois, config, space, INITIAL_VERSION)
    }

    /// Rebuilds a database at an exact version — the recovery path.
    ///
    /// A crashed server reloads its newest checkpoint (`pois` at some
    /// version `V`), constructs the index here, then replays the WAL
    /// tail through [`DynamicLsp::apply`] so the republished version
    /// lands exactly where the pre-crash server left off. `version` is
    /// clamped to [`INITIAL_VERSION`]; 0 is reserved as "no version"
    /// on the wire.
    pub fn restore(pois: Vec<Poi>, config: PpgnnConfig, space: Rect, version: u64) -> Self {
        let version = version.max(INITIAL_VERSION);
        let master = DynamicRTree::new(pois);
        let lsp = publish(&master, &config, space, 1, false);
        DynamicLsp {
            master: Mutex::new(master),
            published: RwLock::new((lsp, version)),
            config,
            space,
            parallelism: 1,
            naive_crypto: false,
        }
    }

    /// Sets candidate-evaluation parallelism for snapshots published
    /// from now on (including the current one, which is republished).
    pub fn with_parallelism(self, threads: usize) -> Self {
        let this = DynamicLsp {
            parallelism: threads.max(1),
            ..self
        };
        this.republish()
    }

    /// Forces the naive (per-entry modpow) selection path on snapshots
    /// published from now on — for A/B benchmarks against the Straus
    /// multi-exponentiation default. Both paths are bit-identical.
    pub fn with_naive_crypto(self, naive: bool) -> Self {
        let this = DynamicLsp {
            naive_crypto: naive,
            ..self
        };
        this.republish()
    }

    /// Republishes the current snapshot with the current tuning.
    fn republish(mut self) -> Self {
        let master = self.master.get_mut().unwrap_or_else(|p| p.into_inner());
        let lsp = publish(
            master,
            &self.config,
            self.space,
            self.parallelism,
            self.naive_crypto,
        );
        let published = self.published.get_mut().unwrap_or_else(|p| p.into_inner());
        published.0 = lsp;
        self
    }

    /// The current snapshot and its version. The returned `Arc<Lsp>`
    /// stays valid (and consistent) for as long as the caller holds it,
    /// regardless of concurrent mutations.
    pub fn snapshot(&self) -> (Arc<Lsp>, u64) {
        let guard = self.published.read().unwrap_or_else(|p| p.into_inner());
        (guard.0.clone(), guard.1)
    }

    /// The currently published version.
    pub fn version(&self) -> u64 {
        self.published.read().unwrap_or_else(|p| p.into_inner()).1
    }

    /// Live POI count of the published snapshot.
    pub fn database_size(&self) -> usize {
        self.snapshot().0.database_size()
    }

    /// The live POI set of the master index, unordered — the payload a
    /// durable checkpoint serializes. Taken under the writer mutex, so
    /// a caller that also serializes its mutations (the WAL lock does)
    /// gets a set that exactly matches [`DynamicLsp::version`].
    pub fn live_pois(&self) -> Vec<Poi> {
        self.master
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .live_pois()
    }

    /// The protocol configuration shared by all snapshots.
    pub fn config(&self) -> &PpgnnConfig {
        &self.config
    }

    /// The normalized data space.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Applies a mutation batch and publishes a new snapshot version.
    ///
    /// Returns `(changed, new_version)` where `changed` counts the ops
    /// that altered the live POI set. The batch is atomic from the
    /// readers' perspective: no query ever sees part of it.
    pub fn apply(&self, ops: &[PoiOp]) -> (usize, u64) {
        let span = telemetry::trace::span(telemetry::trace::SpanName::IndexMutate);
        span.attr(telemetry::trace::AttrKey::PoiOps, ops.len() as u64);
        let _timer = telemetry::global().time(telemetry::Stage::IndexMutate);
        let mut master = self.master.lock().unwrap_or_else(|p| p.into_inner());
        let changed = master.apply(ops);
        let lsp = publish(
            &master,
            &self.config,
            self.space,
            self.parallelism,
            self.naive_crypto,
        );
        let mut published = self.published.write().unwrap_or_else(|p| p.into_inner());
        published.0 = lsp;
        published.1 += 1;
        (changed, published.1)
    }
}

/// Freezes the master index into a fresh immutable snapshot.
fn publish(
    master: &DynamicRTree,
    config: &PpgnnConfig,
    space: Rect,
    parallelism: usize,
    naive_crypto: bool,
) -> Arc<Lsp> {
    Arc::new(
        Lsp::with_engine(
            Box::new(SnapshotEngine::new(master.clone())),
            config.clone(),
            space,
        )
        .with_parallelism(parallelism)
        .with_naive_crypto(naive_crypto),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_geo::{Aggregate, Point};

    fn db() -> Vec<Poi> {
        (0..100)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0),
                )
            })
            .collect()
    }

    fn config() -> PpgnnConfig {
        PpgnnConfig {
            k: 3,
            d: 3,
            delta: 6,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::paper_defaults()
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let dyn_lsp = DynamicLsp::new(db(), config());
        let (snap, v1) = dyn_lsp.snapshot();
        assert_eq!(v1, 1);
        let q = vec![Point::new(0.31, 0.31)];
        let before = snap.plaintext_answer(&q, 1)[0];

        let (changed, v2) = dyn_lsp.apply(&[PoiOp::Insert(Poi::new(9999, q[0]))]);
        assert_eq!((changed, v2), (1, 2));

        // The pinned snapshot still answers from version 1...
        assert_eq!(snap.plaintext_answer(&q, 1)[0].id, before.id);
        // ...while a fresh snapshot sees the insert.
        let (fresh, v) = dyn_lsp.snapshot();
        assert_eq!(v, 2);
        assert_eq!(fresh.plaintext_answer(&q, 1)[0].id, 9999);
    }

    #[test]
    fn apply_batches_are_atomic_and_versioned() {
        let dyn_lsp = DynamicLsp::new(db(), config());
        let ops = vec![
            PoiOp::Remove(0),
            PoiOp::Remove(1),
            PoiOp::Insert(Poi::new(500, Point::new(0.05, 0.05))),
        ];
        let (changed, v) = dyn_lsp.apply(&ops);
        assert_eq!(changed, 3);
        assert_eq!(v, 2);
        assert_eq!(dyn_lsp.database_size(), 99);
        let (_, v3) = dyn_lsp.apply(&[]);
        assert_eq!(v3, 3, "even empty batches bump the version");
    }

    #[test]
    fn restore_resumes_at_the_exact_version() {
        let restored = DynamicLsp::restore(db(), config(), Rect::UNIT, 17);
        assert_eq!(restored.version(), 17);
        let (_, v) = restored.apply(&[PoiOp::Remove(3)]);
        assert_eq!(v, 18, "replay continues the pre-crash sequence");
        // Version 0 is reserved; restore clamps to the first version.
        assert_eq!(
            DynamicLsp::restore(db(), config(), Rect::UNIT, 0).version(),
            1
        );
        let mut live = restored.live_pois();
        live.sort_by_key(|p| p.id);
        assert_eq!(live.len(), 99);
        assert!(live.iter().all(|p| p.id != 3));
    }

    #[test]
    fn matches_rebuilt_from_scratch_index() {
        let dyn_lsp = DynamicLsp::new(db(), config());
        let mut mirror = db();
        let updates = vec![
            PoiOp::Insert(Poi::new(700, Point::new(0.42, 0.87))),
            PoiOp::Remove(55),
            PoiOp::Insert(Poi::new(701, Point::new(0.13, 0.29))),
        ];
        dyn_lsp.apply(&updates);
        mirror.retain(|p| p.id != 55);
        mirror.push(Poi::new(700, Point::new(0.42, 0.87)));
        mirror.push(Poi::new(701, Point::new(0.13, 0.29)));
        let rebuilt = Lsp::new(mirror, config());
        let q = vec![Point::new(0.4, 0.8), Point::new(0.2, 0.3)];
        let (snap, _) = dyn_lsp.snapshot();
        for agg_q in [1usize, 4, 9] {
            assert_eq!(
                snap.plaintext_answer(&q, agg_q)
                    .iter()
                    .map(|p| p.id)
                    .collect::<Vec<_>>(),
                rebuilt
                    .plaintext_answer(&q, agg_q)
                    .iter()
                    .map(|p| p.id)
                    .collect::<Vec<_>>()
            );
        }
        let _ = Aggregate::Sum;
    }
}
