//! Protocol errors.

use core::fmt;

/// Errors raised while configuring or running the PPGNN protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum PpgnnError {
    /// A configuration constraint of Definition 2.2 / §4.1 is violated.
    InvalidConfig(String),
    /// `δ > d^n`: no partition can produce enough candidate queries;
    /// "a larger d should be specified by the users" (§4.1).
    DeltaUnreachable { delta: usize, d: usize, n: usize },
    /// A user submitted a location set of the wrong length.
    BadLocationSet {
        user: usize,
        expected: usize,
        got: usize,
    },
    /// The encrypted indicator vector has the wrong length for the
    /// candidate list.
    BadIndicator { expected: usize, got: usize },
    /// An answer could not be decoded (corrupt count header or packing).
    BadAnswerEncoding(String),
    /// A wire buffer ended before a field could be read.
    TruncatedMessage {
        /// Which field the decoder was reading.
        field: &'static str,
        /// Bytes the field needs.
        needed: usize,
        /// Bytes left in the buffer.
        have: usize,
    },
    /// A message decoded cleanly but did not account for every byte of
    /// its frame — the declared length disagrees with `byte_len()`.
    TrailingBytes {
        /// Bytes the decoder consumed.
        consumed: usize,
        /// Bytes the frame declared.
        total: usize,
    },
    /// A wire field's value exceeds its protocol bound (garbage or an
    /// attempted resource-exhaustion frame).
    FieldOutOfRange {
        /// Which field was out of range.
        field: &'static str,
        /// The decoded value.
        value: u64,
        /// The largest accepted value.
        max: u64,
    },
}

impl fmt::Display for PpgnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpgnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PpgnnError::DeltaUnreachable { delta, d, n } => write!(
                f,
                "delta = {delta} exceeds d^n = {d}^{n}; users must specify a larger d"
            ),
            PpgnnError::BadLocationSet {
                user,
                expected,
                got,
            } => {
                write!(
                    f,
                    "user {user} sent a location set of {got} locations, expected {expected}"
                )
            }
            PpgnnError::BadIndicator { expected, got } => {
                write!(
                    f,
                    "indicator vector has {got} components, expected {expected}"
                )
            }
            PpgnnError::BadAnswerEncoding(msg) => write!(f, "bad answer encoding: {msg}"),
            PpgnnError::TruncatedMessage {
                field,
                needed,
                have,
            } => {
                write!(
                    f,
                    "truncated message: field {field} needs {needed} bytes, {have} left"
                )
            }
            PpgnnError::TrailingBytes { consumed, total } => {
                write!(f, "message consumed {consumed} of {total} framed bytes")
            }
            PpgnnError::FieldOutOfRange { field, value, max } => {
                write!(
                    f,
                    "field {field} = {value} exceeds the protocol bound {max}"
                )
            }
        }
    }
}

impl std::error::Error for PpgnnError {}
