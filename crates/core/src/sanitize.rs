//! Answer sanitation (§5.2–5.3): LSP returns the longest prefix of the
//! top-k answer that keeps Privacy IV under full user collusion.
//!
//! For every prefix and every possible target user, LSP *simulates* the
//! inequality attack: it samples `N_H` uniform points (Theorem 5.1 fixes
//! `N_H` from `(θ₀, γ, η, φ)`), counts how many satisfy the prefix's
//! inequalities, and accepts the prefix only when the Z-test (Eqn 16)
//! rejects `H₀: θ ≤ θ₀` for *every* target.
//!
//! Implementation note: extending a safe prefix from length `t−1` to `t`
//! adds exactly one inequality, so each target keeps its set of
//! still-feasible samples and filters it incrementally — total work is
//! `O(n · N_H · k)` single-inequality tests per answer instead of the
//! naive `O(n · N_H · k²)`.

use ppgnn_geo::{Aggregate, Poi, Point, Rect};
use ppgnn_telemetry as telemetry;
use rand::Rng;

use crate::attack::{sample_point, InequalitySystem};
use crate::params::HypothesisConfig;
use crate::stats::{reject_h0, sample_size};

/// How the sanitizer draws its `N_H` test points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Independent uniform pseudo-random samples — the paper's method.
    Pseudo,
    /// A randomly-shifted Halton (2, 3) low-discrepancy sequence: the
    /// same Z-test with quasi-Monte-Carlo error `O(log N / N)` instead
    /// of `O(1/√N)` — an ablation on the §5.3 design choice.
    Halton,
}

/// LSP-side sanitizer for a fixed privacy configuration.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    theta0: f64,
    gamma: f64,
    n_samples: u64,
    space: Rect,
    sampler: SamplerKind,
}

/// Van der Corput radical inverse in the given base.
fn radical_inverse(mut i: u64, base: u64) -> f64 {
    let mut inv = 1.0 / base as f64;
    let mut result = 0.0;
    while i > 0 {
        result += (i % base) as f64 * inv;
        i /= base;
        inv /= base as f64;
    }
    result
}

impl Sanitizer {
    /// Builds a sanitizer; `N_H` is derived from Theorem 5.1.
    pub fn new(theta0: f64, hypothesis: &HypothesisConfig, space: Rect) -> Self {
        let n_samples = sample_size(theta0, hypothesis.gamma, hypothesis.eta, hypothesis.phi);
        Sanitizer {
            theta0,
            gamma: hypothesis.gamma,
            n_samples,
            space,
            sampler: SamplerKind::Pseudo,
        }
    }

    /// Switches the sampling strategy.
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Draws the `N_H` test points for one target.
    fn draw_samples<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Point> {
        match self.sampler {
            SamplerKind::Pseudo => (0..self.n_samples)
                .map(|_| sample_point(&self.space, rng))
                .collect(),
            SamplerKind::Halton => {
                // Cranley–Patterson rotation keeps the sequence
                // unpredictable to an adversary while preserving the
                // low-discrepancy structure.
                let (sx, sy): (f64, f64) = (rng.gen(), rng.gen());
                (0..self.n_samples)
                    .map(|i| {
                        let x = (radical_inverse(i + 1, 2) + sx).fract();
                        let y = (radical_inverse(i + 1, 3) + sy).fract();
                        Point::new(
                            self.space.min_x + x * self.space.width(),
                            self.space.min_y + y * self.space.height(),
                        )
                    })
                    .collect()
            }
        }
    }

    /// The Monte-Carlo sample size `N_H` in use (Eqn 17).
    pub fn sample_count(&self) -> u64 {
        self.n_samples
    }

    /// The longest safe prefix length `t ∈ [min(1, len), len]` for the
    /// ranked `answer` to the candidate query at `query_locations`.
    ///
    /// A prefix is safe when, for every target user, the Z-test rejects
    /// `H₀: θ ≤ θ₀` — i.e. LSP is confident the target stays hidden in
    /// more than a `θ₀` fraction of the space.
    pub fn safe_prefix_len<R: Rng + ?Sized>(
        &self,
        answer: &[Poi],
        query_locations: &[Point],
        agg: Aggregate,
        rng: &mut R,
    ) -> usize {
        if answer.len() <= 1 {
            return answer.len(); // {p₁} is always safe (§5.2)
        }
        let n = query_locations.len();
        if n <= 1 {
            // Privacy IV only applies to groups (Definition 2.2).
            return answer.len();
        }
        let san_span = telemetry::trace::span(telemetry::trace::SpanName::Sanitation);
        san_span.attr(telemetry::trace::AttrKey::Users, n as u64);
        san_span.attr(telemetry::trace::AttrKey::SetLen, answer.len() as u64);
        let _t = telemetry::global().time(telemetry::Stage::Sanitation);

        // One inequality system + surviving-sample set per target user.
        let mut targets: Vec<(InequalitySystem, Vec<Point>)> = (0..n)
            .map(|target| {
                let colluders: Vec<Point> = query_locations
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != target)
                    .map(|(_, p)| *p)
                    .collect();
                let system = InequalitySystem::new(answer, &colluders, agg);
                let samples = self.draw_samples(rng);
                (system, samples)
            })
            .collect();

        for t in 2..=answer.len() {
            // One span per prefix length: only the length under test and
            // the surviving-sample count appear, never sample points.
            let prefix_span = telemetry::trace::span(telemetry::trace::SpanName::SanitationPrefix);
            prefix_span.attr(telemetry::trace::AttrKey::PrefixLen, t as u64);
            let mut min_survivors = u64::MAX;
            let new_ineq = t - 2; // F(p_{t-1}) ≤ F(p_t), 0-based
            let mut all_safe = true;
            for (system, survivors) in targets.iter_mut() {
                survivors.retain(|x| system.satisfies(new_ineq, x));
                min_survivors = min_survivors.min(survivors.len() as u64);
                telemetry::global().incr(telemetry::Op::SanitationZTest);
                if !reject_h0(
                    survivors.len() as u64,
                    self.n_samples,
                    self.theta0,
                    self.gamma,
                ) {
                    all_safe = false;
                    // Keep filtering the other targets? No — once any
                    // target is exposed the prefix is rejected outright.
                    break;
                }
            }
            if min_survivors != u64::MAX {
                prefix_span.attr(telemetry::trace::AttrKey::Survivors, min_survivors);
            }
            if !all_safe {
                return t - 1;
            }
        }
        answer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sanitizer(theta0: f64) -> Sanitizer {
        Sanitizer::new(theta0, &HypothesisConfig::default(), Rect::UNIT)
    }

    /// Builds a correctly-ranked answer for the given group.
    fn ranked_answer(pois: &mut [Poi], query: &[Point], agg: Aggregate) -> Vec<Poi> {
        pois.sort_by(|a, b| {
            agg.eval(&a.location, query)
                .total_cmp(&agg.eval(&b.location, query))
        });
        pois.to_vec()
    }

    #[test]
    fn sample_size_matches_theorem() {
        let s = sanitizer(0.05);
        assert_eq!(s.sample_count(), sample_size(0.05, 0.05, 0.2, 0.1));
    }

    #[test]
    fn empty_and_singleton_answers_pass_through() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = sanitizer(0.05);
        let q = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        assert_eq!(s.safe_prefix_len(&[], &q, Aggregate::Sum, &mut rng), 0);
        let one = [Poi::new(0, Point::new(0.5, 0.5))];
        assert_eq!(s.safe_prefix_len(&one, &q, Aggregate::Sum, &mut rng), 1);
    }

    #[test]
    fn single_user_group_skips_sanitation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = sanitizer(0.05);
        let answer: Vec<Poi> = (0..5)
            .map(|i| Poi::new(i, Point::new(i as f64 / 5.0, 0.5)))
            .collect();
        assert_eq!(
            s.safe_prefix_len(&answer, &[Point::new(0.0, 0.5)], Aggregate::Sum, &mut rng),
            5
        );
    }

    #[test]
    fn tight_theta0_permits_longer_prefixes() {
        // A smaller θ0 is a weaker requirement on the attacker's region,
        // so prefixes stay safe longer (Figure 7c's trend).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let query: Vec<Point> = vec![
            Point::new(0.2, 0.3),
            Point::new(0.7, 0.6),
            Point::new(0.4, 0.8),
            Point::new(0.6, 0.2),
        ];
        let mut pois: Vec<Poi> = (0..16)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(((i * 7) % 16) as f64 / 16.0, ((i * 5) % 16) as f64 / 16.0),
                )
            })
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);

        let loose = sanitizer(0.30).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        let tight = sanitizer(0.01).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        assert!(tight >= loose, "θ0=0.01 gave {tight}, θ0=0.3 gave {loose}");
    }

    #[test]
    fn full_answer_safe_when_region_stays_large() {
        // POIs clustered in a tiny blob far from the group: their relative
        // order conveys almost nothing about any single user, so the whole
        // answer should survive at a modest θ0.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let query = vec![
            Point::new(0.1, 0.1),
            Point::new(0.12, 0.13),
            Point::new(0.09, 0.14),
        ];
        let mut pois: Vec<Poi> = (0..4)
            .map(|i| Poi::new(i, Point::new(0.9 + (i as f64) * 1e-6, 0.9)))
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);
        let len = sanitizer(0.001).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        assert_eq!(len, 4);
    }

    #[test]
    fn prefix_shrinks_when_answer_pins_target() {
        // A long, informative ranked answer around a 2-user group at a
        // strict θ0 must be truncated.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let query = vec![Point::new(0.3, 0.5), Point::new(0.7, 0.5)];
        let mut pois: Vec<Poi> = (0..32)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(((i * 13) % 32) as f64 / 32.0, ((i * 11) % 32) as f64 / 32.0),
                )
            })
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);
        let len = sanitizer(0.5).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        assert!(len < 32, "a 32-POI ranked answer cannot keep θ > 0.5");
        assert!(len >= 1);
    }

    #[test]
    fn sanitized_prefix_defeats_the_attack() {
        // End-to-end §5.4 check: after sanitation, the colluders' region
        // estimate stays above θ0 for every target.
        use crate::attack::feasible_region_fraction;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let theta0 = 0.10;
        let query = vec![
            Point::new(0.25, 0.4),
            Point::new(0.65, 0.7),
            Point::new(0.5, 0.15),
        ];
        let mut pois: Vec<Poi> = (0..24)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(((i * 17) % 24) as f64 / 24.0, ((i * 7) % 24) as f64 / 24.0),
                )
            })
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);
        let len = sanitizer(theta0).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        let safe = &answer[..len];
        for target in 0..query.len() {
            let colluders: Vec<Point> = query
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let theta = feasible_region_fraction(
                safe,
                &colluders,
                Aggregate::Sum,
                &Rect::UNIT,
                20_000,
                &mut rng,
            );
            // γ = 0.05 Type-I error: allow a little statistical slack.
            assert!(theta > theta0 * 0.8, "target {target} exposed: θ = {theta}");
        }
    }

    #[test]
    fn halton_sampler_agrees_with_pseudo() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let query = vec![
            Point::new(0.3, 0.4),
            Point::new(0.7, 0.5),
            Point::new(0.5, 0.8),
        ];
        let mut pois: Vec<Poi> = (0..12)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(((i * 5) % 12) as f64 / 12.0, ((i * 7) % 12) as f64 / 12.0),
                )
            })
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);
        let pseudo = sanitizer(0.05).safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        let halton = sanitizer(0.05)
            .with_sampler(SamplerKind::Halton)
            .safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        // The estimators target the same θ; prefixes may differ by at
        // most the boundary step.
        assert!(
            (pseudo as i64 - halton as i64).abs() <= 1,
            "{pseudo} vs {halton}"
        );
    }

    #[test]
    fn halton_estimates_area_more_accurately() {
        // Quasi-MC beats pseudo-MC at equal sample count on a smooth
        // indicator: estimate the area of an axis-aligned box.
        let inside = |p: &Point| p.x < 0.37 && p.y < 0.61;
        let exact = 0.37 * 0.61;
        let n = 4096u64;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = Sanitizer {
            theta0: 0.05,
            gamma: 0.05,
            n_samples: n,
            space: Rect::UNIT,
            sampler: SamplerKind::Halton,
        };
        let halton_pts = s.draw_samples(&mut rng);
        let halton_est = halton_pts.iter().filter(|p| inside(p)).count() as f64 / n as f64;
        let mut pseudo_err_sum = 0.0;
        for seed in 0..5 {
            let mut prng = ChaCha8Rng::seed_from_u64(100 + seed);
            let pseudo_pts: Vec<Point> = (0..n)
                .map(|_| crate::attack::sample_point(&Rect::UNIT, &mut prng))
                .collect();
            let est = pseudo_pts.iter().filter(|p| inside(p)).count() as f64 / n as f64;
            pseudo_err_sum += (est - exact).abs();
        }
        let pseudo_err = pseudo_err_sum / 5.0;
        assert!(
            (halton_est - exact).abs() < pseudo_err * 2.0,
            "halton err {} should rival pseudo err {pseudo_err}",
            (halton_est - exact).abs()
        );
    }

    #[test]
    fn radical_inverse_properties() {
        assert_eq!(radical_inverse(0, 2), 0.0);
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert!((radical_inverse(1, 3) - 1.0 / 3.0).abs() < 1e-12);
        for i in 0..100 {
            let v = radical_inverse(i, 5);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn monotone_in_prefix_length() {
        // If prefix t is reported safe, every shorter prefix must be safe
        // too — the search stops at the first unsafe extension, so the
        // reported length is well-defined.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let query = vec![Point::new(0.4, 0.4), Point::new(0.6, 0.6)];
        let mut pois: Vec<Poi> = (0..12)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i as f64) / 12.0, ((i * 3) % 12) as f64 / 12.0),
                )
            })
            .collect();
        let answer = ranked_answer(&mut pois, &query, Aggregate::Sum);
        let s = sanitizer(0.05);
        let len_full = s.safe_prefix_len(&answer, &query, Aggregate::Sum, &mut rng);
        let len_clipped = s.safe_prefix_len(&answer[..len_full], &query, Aggregate::Sum, &mut rng);
        assert_eq!(len_clipped, len_full);
    }
}
