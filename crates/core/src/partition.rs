//! Exact solver for the partition parameters `{n̄, d̄}` of §4.1.
//!
//! The paper formulates Eqn 7–10 as a nonlinear integer program:
//!
//! ```text
//!     minimize   δ′ = Σ_{i=1}^{β} d̄_i^α
//!     subject to δ′ ≥ δ,  Σ d̄_i = d,  α ∈ [1, n],  β ∈ [1, d],  d̄_i ≥ 1
//! ```
//!
//! and solves it offline with a MINLP solver (Bonmin). Our instances are
//! tiny (`d ≤ 50`, `n ≤ 32`), so we solve it *exactly* by enumerating,
//! for every `α`, the integer partitions of `d` in non-increasing part
//! order with branch-and-bound pruning (see DESIGN.md §5). Costs are
//! computed with saturating `u128` arithmetic — `50^32` overflows
//! everything, but any cost `≥ δ` only competes on its exact value,
//! which is only needed when it is the minimum, and the minimum is
//! always far below the saturation point for feasible configurations
//! (δ ≤ d^n and the optimum is < 2δ whenever a feasible refinement
//! exists; saturated costs simply lose the comparison).

use serde::{Deserialize, Serialize};

use crate::error::PpgnnError;

/// The solved partition parameters: subgroup sizes `n̄` (of the user
/// group) and segment sizes `d̄` (of every location set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionParams {
    /// `n̄ = (n̄_1, …, n̄_α)`: subgroup sizes, summing to `n`.
    pub subgroup_sizes: Vec<usize>,
    /// `d̄ = (d̄_1, …, d̄_β)`: segment sizes, summing to `d`.
    pub segment_sizes: Vec<usize>,
}

impl PartitionParams {
    /// `α`: the number of subgroups.
    pub fn alpha(&self) -> usize {
        self.subgroup_sizes.len()
    }

    /// `β`: the number of segments.
    pub fn beta(&self) -> usize {
        self.segment_sizes.len()
    }

    /// `δ′ = Σ_i d̄_i^α`: the number of candidate queries generated.
    pub fn delta_prime(&self) -> u128 {
        let alpha = self.alpha() as u32;
        self.segment_sizes
            .iter()
            .map(|&s| (s as u128).saturating_pow(alpha))
            .fold(0u128, u128::saturating_add)
    }

    /// Offset (0-based absolute position within a location set) of the
    /// first slot of segment `seg` (0-based).
    pub fn segment_offset(&self, seg: usize) -> usize {
        self.segment_sizes[..seg].iter().sum()
    }

    /// Maps a user index (0-based) to its subgroup index (0-based):
    /// subgroup 0 holds the first `n̄_1` users, subgroup 1 the next `n̄_2`,
    /// and so on (§4.2, "LSP can reconstruct subgroup₁ as the first n̄₁
    /// users…").
    pub fn subgroup_of(&self, user: usize) -> usize {
        let mut acc = 0;
        for (j, &size) in self.subgroup_sizes.iter().enumerate() {
            acc += size;
            if user < acc {
                return j;
            }
        }
        panic!("user index {user} out of range for group of {}", acc)
    }
}

/// Solves Eqn 7–10 exactly for `(n, d, δ)`.
///
/// Returns an error when `δ > d^n` (no partition can reach `δ`
/// candidates, §4.1 tells users to raise `d`).
pub fn solve_partition(n: usize, d: usize, delta: usize) -> Result<PartitionParams, PpgnnError> {
    assert!(
        n >= 1 && d >= 1 && delta >= 1,
        "n, d, delta must be positive"
    );

    let mut best: Option<(u128, usize, Vec<usize>)> = None; // (δ′, α, d̄)
    for alpha in 1..=n {
        if let Some(segments) = best_segments_for_alpha(d, delta as u128, alpha, &mut best) {
            let cost = cost_of(&segments, alpha);
            match &best {
                Some((b, _, _)) if *b <= cost => {}
                _ => best = Some((cost, alpha, segments)),
            }
        }
    }

    let Some((_, alpha, mut segment_sizes)) = best else {
        return Err(PpgnnError::DeltaUnreachable { delta, d, n });
    };
    // Deterministic presentation: largest segments first.
    segment_sizes.sort_unstable_by(|a, b| b.cmp(a));

    // Subgroup sizes are irrelevant to δ′ (Eqn 7); split near-equally.
    let mut subgroup_sizes = vec![n / alpha; alpha];
    for s in subgroup_sizes.iter_mut().take(n % alpha) {
        *s += 1;
    }
    Ok(PartitionParams {
        subgroup_sizes,
        segment_sizes,
    })
}

fn cost_of(segments: &[usize], alpha: usize) -> u128 {
    segments
        .iter()
        .map(|&s| (s as u128).saturating_pow(alpha as u32))
        .fold(0u128, u128::saturating_add)
}

/// Branch-and-bound over integer partitions of `d` (parts non-increasing),
/// returning the cost-minimal partition with cost ≥ `delta` for this `α`,
/// if one exists. `global_best` prunes across α values.
fn best_segments_for_alpha(
    d: usize,
    delta: u128,
    alpha: usize,
    global_best: &mut Option<(u128, usize, Vec<usize>)>,
) -> Option<Vec<usize>> {
    struct Search<'a> {
        alpha: u32,
        delta: u128,
        best: Option<(u128, Vec<usize>)>,
        global_best: &'a Option<(u128, usize, Vec<usize>)>,
        stack: Vec<usize>,
    }

    impl Search<'_> {
        fn pow(&self, p: usize) -> u128 {
            (p as u128).saturating_pow(self.alpha)
        }

        /// Max cost completable from `remaining` with parts ≤ `max_part`:
        /// greedy largest parts.
        fn max_completion(&self, mut remaining: usize, max_part: usize) -> u128 {
            let mut acc: u128 = 0;
            while remaining > 0 {
                let p = remaining.min(max_part);
                acc = acc.saturating_add(self.pow(p));
                remaining -= p;
            }
            acc
        }

        fn dfs(&mut self, remaining: usize, max_part: usize, cost: u128) {
            if remaining == 0 {
                if cost >= self.delta {
                    let better_local = self.best.as_ref().is_none_or(|(b, _)| cost < *b);
                    if better_local {
                        self.best = Some((cost, self.stack.clone()));
                    }
                }
                return;
            }
            // Lower bound on final cost: all remaining parts of size 1.
            let min_final = cost.saturating_add(remaining as u128);
            if let Some((b, _)) = &self.best {
                if min_final >= *b {
                    return;
                }
            }
            if let Some((b, _, _)) = self.global_best {
                if min_final >= *b {
                    return;
                }
            }
            // Feasibility: even the largest-part completion stays below δ.
            if cost.saturating_add(self.max_completion(remaining, max_part)) < self.delta {
                return;
            }
            for part in (1..=max_part.min(remaining)).rev() {
                self.stack.push(part);
                self.dfs(remaining - part, part, cost.saturating_add(self.pow(part)));
                self.stack.pop();
            }
        }
    }

    let mut s = Search {
        alpha: alpha as u32,
        delta,
        best: None,
        global_best,
        stack: Vec::new(),
    };
    s.dfs(d, d, 0);
    s.best.map(|(_, parts)| parts)
}

/// Exhaustive reference solver (no pruning) for cross-checking on small
/// instances. Exposed for property tests.
pub fn solve_partition_oracle(n: usize, d: usize, delta: usize) -> Option<(u128, usize)> {
    fn partitions(d: usize, max_part: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if d == 0 {
            out.push(cur.clone());
            return;
        }
        for part in (1..=max_part.min(d)).rev() {
            cur.push(part);
            partitions(d - part, part, cur, out);
            cur.pop();
        }
    }
    let mut parts = Vec::new();
    partitions(d, d, &mut Vec::new(), &mut parts);
    let mut best: Option<(u128, usize)> = None;
    for alpha in 1..=n {
        for p in &parts {
            let cost = cost_of(p, alpha);
            if cost >= delta as u128 && best.is_none_or(|(b, _)| cost < b) {
                best = Some((cost, alpha));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_instance() {
        // n=4, d=4, δ=8: the paper uses n̄=(2,2), d̄=(2,2) giving δ′ = 2·2² = 8.
        let p = solve_partition(4, 4, 8).unwrap();
        assert_eq!(p.delta_prime(), 8);
        assert_eq!(p.segment_sizes, vec![2, 2]);
        assert_eq!(p.alpha(), 2);
        assert_eq!(p.subgroup_sizes.iter().sum::<usize>(), 4);
    }

    #[test]
    fn single_user_case() {
        // n=1, δ=d: the paper notes β=d with unit segments works; any
        // solution must give δ′ = d (cost is always d when α = 1).
        let p = solve_partition(1, 25, 25).unwrap();
        assert_eq!(p.alpha(), 1);
        assert_eq!(p.delta_prime(), 25);
        assert_eq!(p.segment_sizes.iter().sum::<usize>(), 25);
    }

    #[test]
    fn delta_unreachable() {
        assert!(matches!(
            solve_partition(1, 10, 11),
            Err(PpgnnError::DeltaUnreachable { .. })
        ));
        assert!(matches!(
            solve_partition(2, 3, 10), // d^n = 9 < 10
            Err(PpgnnError::DeltaUnreachable { .. })
        ));
    }

    #[test]
    fn solution_always_feasible() {
        for (n, d, delta) in [
            (2, 5, 10),
            (4, 25, 100),
            (8, 25, 100),
            (3, 10, 50),
            (2, 50, 200),
        ] {
            let p = solve_partition(n, d, delta).unwrap();
            assert!(p.delta_prime() >= delta as u128, "{n},{d},{delta}");
            assert_eq!(p.segment_sizes.iter().sum::<usize>(), d);
            assert_eq!(p.subgroup_sizes.iter().sum::<usize>(), n);
            assert!(p.alpha() <= n);
            assert!(p.segment_sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn matches_oracle_on_small_instances() {
        for n in 1..=4 {
            for d in 2..=10 {
                for delta in [d, d + 3, 2 * d, d * d] {
                    let oracle = solve_partition_oracle(n, d, delta);
                    match solve_partition(n, d, delta) {
                        Ok(p) => {
                            let (oc, _) = oracle.expect("oracle must agree on feasibility");
                            assert_eq!(p.delta_prime(), oc, "n={n} d={d} delta={delta}");
                        }
                        Err(_) => assert!(oracle.is_none(), "n={n} d={d} delta={delta}"),
                    }
                }
            }
        }
    }

    #[test]
    fn delta_prime_close_to_delta_at_paper_scale() {
        // §8.3: "the average difference between δ′ and δ is approximately 1".
        let mut total_gap = 0u128;
        let mut count = 0u128;
        for n in [2usize, 4, 8, 16, 32] {
            for delta in [50usize, 100, 150, 200] {
                let p = solve_partition(n, 25, delta).unwrap();
                total_gap += p.delta_prime() - delta as u128;
                count += 1;
            }
        }
        let avg_gap = total_gap as f64 / count as f64;
        assert!(avg_gap < 3.0, "average δ′−δ gap too large: {avg_gap}");
    }

    #[test]
    fn subgroup_of_maps_users_correctly() {
        let p = PartitionParams {
            subgroup_sizes: vec![2, 2],
            segment_sizes: vec![2, 2],
        };
        assert_eq!(p.subgroup_of(0), 0);
        assert_eq!(p.subgroup_of(1), 0);
        assert_eq!(p.subgroup_of(2), 1);
        assert_eq!(p.subgroup_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subgroup_of_out_of_range() {
        let p = PartitionParams {
            subgroup_sizes: vec![2],
            segment_sizes: vec![2],
        };
        let _ = p.subgroup_of(5);
    }

    #[test]
    fn segment_offsets() {
        let p = PartitionParams {
            subgroup_sizes: vec![1],
            segment_sizes: vec![3, 2, 4],
        };
        assert_eq!(p.segment_offset(0), 0);
        assert_eq!(p.segment_offset(1), 3);
        assert_eq!(p.segment_offset(2), 5);
    }

    #[test]
    fn large_instance_terminates_quickly() {
        let start = std::time::Instant::now();
        let p = solve_partition(32, 50, 200).unwrap();
        assert!(p.delta_prime() >= 200);
        assert!(
            start.elapsed().as_secs() < 5,
            "solver too slow: {:?}",
            start.elapsed()
        );
    }
}
