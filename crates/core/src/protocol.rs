//! The full protocol driver: Algorithm 1 (query generation), the LSP
//! round (Algorithm 2), and answer decryption — for all three variants
//! (PPGNN §4.2, PPGNN-OPT §6, Naive §4).
//!
//! The driver simulates every party on one machine while the
//! [`CostLedger`] records exactly what each party computed and every byte
//! each message would occupy on the wire.

use std::sync::Arc;

use ppgnn_geo::{Point, Rect};
use ppgnn_paillier::{
    generate_keypair, Ciphertext, Decryptor, DjContext, Encryptor, FreshEncryptor, Keypair,
    PooledEncryptor, PublicKey, RandomizerPool,
};
use ppgnn_sim::{CostLedger, CostReport, Party, SCALAR_BYTES};
use ppgnn_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::candidate::query_index;
use crate::encoding::AnswerCodec;
use crate::error::PpgnnError;
use crate::lsp::Lsp;
use crate::messages::{AnswerMessage, IndicatorPayload, LocationSetMessage, QueryMessage};
use crate::params::{PpgnnConfig, Variant};
use crate::partition::PartitionParams;
use crate::partition_cache::solve_partition_cached;
use crate::wire::WireContext;

/// The outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// The decrypted answer: the (sanitized) top-`t` POI locations,
    /// best first.
    pub answer: Vec<Point>,
    /// `t`: POIs actually returned (≤ k after sanitation — Figure 7).
    pub pois_returned: usize,
    /// `δ′`: candidate queries the LSP evaluated.
    pub delta_prime: usize,
    /// The aggregated cost report.
    pub report: CostReport,
    /// The ordered message transcript (who sent what, in order).
    pub transcript: ppgnn_sim::Transcript,
}

/// Runs the configured protocol variant end to end, generating a fresh
/// keypair (Algorithm 1 line 8).
pub fn run_ppgnn<R: Rng + ?Sized>(
    lsp: &Lsp,
    real_locations: &[Point],
    rng: &mut R,
) -> Result<ProtocolRun, PpgnnError> {
    run_ppgnn_with_keys(lsp, real_locations, None, rng)
}

/// Everything the coordinator (Algorithm 1) produces for one query: the
/// wire-ready messages, plus the public facts the querying side needs to
/// frame the request and decode the reply.
///
/// This is the unit a *remote* client sends to a networked LSP
/// (`ppgnn-server`); [`run_ppgnn_with_keys`] drives the same plan against
/// an in-process [`Lsp`].
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The coordinator's query message (Algorithm 1 line 11).
    pub query: QueryMessage,
    /// One location set per user, real locations planted (line 15).
    pub location_sets: Vec<LocationSetMessage>,
    /// Whether the answer comes back doubly encrypted (PPGNN-OPT).
    pub two_phase: bool,
    /// `δ′`: candidate queries the LSP will evaluate.
    pub delta_prime: usize,
}

impl QueryPlan {
    /// The public decode context a receiver needs for this query.
    pub fn wire_context(&self) -> WireContext {
        let omega = match &self.query.indicator {
            IndicatorPayload::Plain(_) => None,
            IndicatorPayload::TwoPhase { outer, .. } => Some(outer.len()),
        };
        WireContext {
            key_bits: self.query.pk.key_bits(),
            two_phase_omega: omega,
            has_partition: self.query.partition.is_some(),
        }
    }
}

/// Session-long client crypto: background-refilled randomizer pools for
/// the ε₁ (and, under PPGNN-OPT, ε₂) contexts, sized so that one query's
/// indicator encryptions are a pool hit and the refill thread tops the
/// pools back up *between* queries — the server/session form of the
/// paper's mobile-user offline phase.
///
/// Capacity is 2× the per-query randomizer need with the low watermark at
/// one query's worth, so back-to-back queries overlap refill with query
/// work and a dry pool degrades to fresh randomness (a `pool-miss`)
/// instead of stalling.
pub struct SessionCrypto {
    enc1: PooledEncryptor,
    enc2: Option<PooledEncryptor>,
    /// Group size the pools were sized for.
    users: usize,
}

impl std::fmt::Debug for SessionCrypto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCrypto")
            .field("users", &self.users)
            .field("pool1", self.enc1.pool())
            .field("pool2", &self.enc2.as_ref().map(|e| e.pool()))
            .finish()
    }
}

impl SessionCrypto {
    /// Builds the pools for `config` and a group of `n` users. Pass a
    /// `seed` for deterministic randomizers (tests); `None` draws from OS
    /// entropy.
    pub fn new(
        config: &PpgnnConfig,
        n: usize,
        pk: &PublicKey,
        seed: Option<u64>,
    ) -> Result<Self, PpgnnError> {
        let delta_prime = match config.variant {
            Variant::Plain | Variant::Opt => {
                solve_partition_cached(n, config.d, config.delta)?.delta_prime() as usize
            }
            Variant::Naive => config.delta,
        };
        let make = |ctx: DjContext, need: usize, salt: u64| {
            let need = need.max(1);
            // Watermark `need + 1`: any query's drain (`need` takes) is
            // guaranteed to cross below it from any starting depth, so
            // every query wakes the refill thread and the pool converges
            // back to capacity between queries.
            let pool = Arc::new(RandomizerPool::with_background_refill(
                ctx,
                2 * need,
                need + 1,
                seed.map(|s| s ^ salt),
            ));
            match seed {
                Some(s) => PooledEncryptor::seeded(pool, s.wrapping_add(salt)),
                None => PooledEncryptor::new(pool),
            }
        };
        let ctx1 = DjContext::new(pk, 1);
        Ok(match config.variant {
            Variant::Opt => {
                let (omega, block_size) = opt_split(delta_prime);
                let ctx2 = DjContext::new(pk, 2);
                SessionCrypto {
                    enc1: make(ctx1, block_size, 0x5e55),
                    enc2: Some(make(ctx2, omega, 0xc0de)),
                    users: n,
                }
            }
            Variant::Plain | Variant::Naive => SessionCrypto {
                enc1: make(ctx1, delta_prime, 0x5e55),
                enc2: None,
                users: n,
            },
        })
    }

    /// The group size these pools were sized for.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Blocks until every pool is filled to capacity — for benchmarks
    /// that must separate offline warm-up from online measurement.
    pub fn wait_until_ready(&self) {
        self.enc1.pool().wait_until_full();
        if let Some(e2) = &self.enc2 {
            e2.pool().wait_until_full();
        }
    }
}

/// Algorithm 1, the coordinator/user side only: partition the location
/// sets, plant the real locations, and build the encrypted indicator(s).
///
/// CPU time is charged to [`Party::Coordinator`] / [`Party::User`] on
/// `ledger` and the intra-group position broadcast plus the outbound
/// query/location-set messages are recorded, exactly as in the
/// single-process driver — so a remote client's ledger matches the
/// simulation byte for byte.
pub fn plan_query<R: Rng + ?Sized>(
    config: &PpgnnConfig,
    space: Rect,
    real_locations: &[Point],
    keys: &Keypair,
    ledger: &mut CostLedger,
    rng: &mut R,
) -> Result<QueryPlan, PpgnnError> {
    plan_query_with(config, space, real_locations, keys, ledger, rng, None)
}

/// [`plan_query`], optionally drawing indicator randomizers from
/// session-long background-refilled pools ([`SessionCrypto`]) instead of
/// per-query offline pools.
pub fn plan_query_with<R: Rng + ?Sized>(
    config: &PpgnnConfig,
    space: Rect,
    real_locations: &[Point],
    keys: &Keypair,
    ledger: &mut CostLedger,
    rng: &mut R,
    session: Option<&SessionCrypto>,
) -> Result<QueryPlan, PpgnnError> {
    let n = real_locations.len();
    config.validate(n)?;
    let plan_span = telemetry::trace::span(telemetry::trace::SpanName::ClientPlan);
    plan_span.attr(telemetry::trace::AttrKey::Users, n as u64);
    let _plan_timer = telemetry::global().time(telemetry::Stage::ClientPlan);

    // ---- Coordinator: partition parameters, positions, query index ----
    let coordinator_plan = ledger.time(Party::Coordinator, || -> Result<_, PpgnnError> {
        match config.variant {
            Variant::Plain | Variant::Opt => {
                // §4.1: partition parameters for frequent (n, d, δ) are
                // precomputed once; the memo realizes that assumption.
                let params = solve_partition_cached(n, config.d, config.delta)?;
                // Eqn 11: pick the segment with probability d̄_i / d.
                let seg = weighted_segment(&params, config.d, rng);
                let seg_size = params.segment_sizes[seg];
                let x: Vec<usize> = (0..params.alpha())
                    .map(|_| rng.gen_range(0..seg_size))
                    .collect();
                let qi = query_index(&params, seg, &x);
                let offset = params.segment_offset(seg);
                let positions: Vec<usize> =
                    (0..n).map(|u| offset + x[params.subgroup_of(u)]).collect();
                Ok((Some(params), positions, qi, config.d))
            }
            Variant::Naive => {
                // Every user sends δ locations; reals share one position.
                let pos = rng.gen_range(0..config.delta);
                Ok((None, vec![pos; n], pos, config.delta))
            }
        }
    })?;
    let (partition, positions, qi, set_len) = coordinator_plan;
    let delta_prime = partition
        .as_ref()
        .map(|p| p.delta_prime() as usize)
        .unwrap_or(config.delta);

    // Broadcast pos_j to the other users (Algorithm 1 line 7).
    for u in 1..n {
        ledger.record_msg_labeled(
            Party::Coordinator,
            Party::User(u as u32),
            SCALAR_BYTES,
            "pos broadcast",
        );
    }

    // ---- Coordinator: encrypted indicator(s) under the session key ----
    let pk = keys.0.clone();
    let ctx1 = DjContext::new(&pk, 1);
    let needs_eps2 = matches!(config.variant, Variant::Opt);
    let per_query_need = if needs_eps2 {
        let (omega, block_size) = opt_split(delta_prime);
        (omega + block_size) as u64
    } else {
        delta_prime as u64
    };

    // Offline phase (not charged to the per-query user cost): session
    // pools when supplied, per-query prefilled pools under
    // `offline_randomness`, fresh randomness otherwise.
    type QueryEncryptors = (Box<dyn Encryptor>, Option<Box<dyn Encryptor>>);
    let owned_crypto: Option<QueryEncryptors> = match (session, config.offline_randomness) {
        (Some(_), true) => {
            ledger.count("offline_randomizers", per_query_need);
            None
        }
        (_, true) => {
            ledger.count("offline_randomizers", per_query_need);
            let pooled = |ctx: &DjContext, need: usize, rng: &mut R| -> Box<dyn Encryptor> {
                let pool = Arc::new(RandomizerPool::prefilled(ctx, need, rng));
                Box::new(PooledEncryptor::seeded(pool, rng.gen()))
            };
            if needs_eps2 {
                let (omega, block_size) = opt_split(delta_prime);
                let ctx2 = DjContext::new(&pk, 2);
                Some((
                    pooled(&ctx1, block_size, rng),
                    Some(pooled(&ctx2, omega, rng)),
                ))
            } else {
                Some((pooled(&ctx1, delta_prime, rng), None))
            }
        }
        (_, false) => {
            let fresh = |ctx: DjContext, rng: &mut R| -> Box<dyn Encryptor> {
                Box::new(FreshEncryptor::with_rng(
                    ctx,
                    StdRng::seed_from_u64(rng.gen()),
                ))
            };
            let e2 = needs_eps2.then(|| fresh(DjContext::new(&pk, 2), rng));
            Some((fresh(ctx1.clone(), rng), e2))
        }
    };
    let (enc1, enc2): (&dyn Encryptor, Option<&dyn Encryptor>) = match (&owned_crypto, session) {
        (Some((e1, e2)), _) => (e1.as_ref(), e2.as_deref()),
        (None, Some(sc)) => (&sc.enc1, sc.enc2.as_ref().map(|e| e as &dyn Encryptor)),
        (None, None) => unreachable!("owned_crypto is built whenever no session is supplied"),
    };
    let indicator = ledger.time(Party::Coordinator, || match config.variant {
        Variant::Plain | Variant::Naive => IndicatorPayload::Plain(
            enc1.encrypt_indicator(delta_prime, qi)
                .expect("indicator plaintexts are 0/1"),
        ),
        Variant::Opt => {
            let (omega, block_size) = opt_split(delta_prime);
            let e2 = enc2.expect("OPT always builds an ε₂ encryptor");
            IndicatorPayload::TwoPhase {
                inner: enc1
                    .encrypt_indicator(block_size, qi % block_size)
                    .expect("indicator plaintexts are 0/1"),
                outer: e2
                    .encrypt_indicator(omega, qi / block_size)
                    .expect("indicator plaintexts are 0/1"),
            }
        }
    });

    let query = QueryMessage {
        k: config.k,
        pk: pk.clone(),
        partition,
        indicator,
        theta0: config.theta0,
    };
    ledger.record_msg_labeled(Party::Coordinator, Party::Lsp, query.byte_len(), "query");

    // ---- Every user: location set with the real location planted ----
    let mut location_sets = Vec::with_capacity(n);
    for (u, (&real, &pos)) in real_locations.iter().zip(&positions).enumerate() {
        let party = Party::User(u as u32);
        let msg = ledger.time(party, || {
            let mut locations: Vec<Point> = (0..set_len - 1)
                .map(|_| crate::attack::sample_point(&space, rng))
                .collect();
            locations.insert(pos, real);
            LocationSetMessage {
                user_index: u,
                locations,
            }
        });
        ledger.record_msg_labeled(party, Party::Lsp, msg.byte_len(), "location set");
        location_sets.push(msg);
    }

    Ok(QueryPlan {
        two_phase: matches!(query.indicator, IndicatorPayload::TwoPhase { .. }),
        query,
        location_sets,
        delta_prime,
    })
}

/// Decrypts and unpacks the LSP's reply (CRT-accelerated), charging the
/// CPU time to [`Party::Coordinator`].
pub fn decode_answer(
    keys: &Keypair,
    k: usize,
    answer_msg: &AnswerMessage,
    ledger: &mut CostLedger,
) -> Result<Vec<Point>, PpgnnError> {
    let (pk, sk) = (&keys.0, &keys.1);
    let ctx1 = DjContext::new(pk, 1);
    let codec = AnswerCodec::new(pk.key_bits(), 1, k);
    ledger.time(Party::Coordinator, || match answer_msg {
        AnswerMessage::Plain(enc) => {
            let dec1 = Decryptor::new(&ctx1, sk);
            codec.decode(&dec1.decrypt_vector(&ctx1, enc))
        }
        AnswerMessage::TwoPhase(enc) => {
            let ctx2 = DjContext::new(pk, 2);
            let dec1 = Decryptor::new(&ctx1, sk);
            let dec2 = Decryptor::new(&ctx2, sk);
            let inner_values: Vec<_> = enc
                .elements()
                .iter()
                .map(|c| {
                    let inner = dec2.decrypt(&ctx2, c);
                    dec1.decrypt(&ctx1, &Ciphertext::from_parts(inner, 1))
                })
                .collect();
            codec.decode(&inner_values)
        }
    })
}

/// Runs the protocol, optionally reusing a pre-generated keypair.
///
/// Key generation is part of Algorithm 1 and is timed as coordinator
/// work when performed here; benchmarks that sweep hundreds of queries
/// pass a shared keypair instead (and say so — see EXPERIMENTS.md).
pub fn run_ppgnn_with_keys<R: Rng + ?Sized>(
    lsp: &Lsp,
    real_locations: &[Point],
    keys: Option<&Keypair>,
    rng: &mut R,
) -> Result<ProtocolRun, PpgnnError> {
    let config = lsp.config().clone();
    let n = real_locations.len();
    config.validate(n)?;
    let mut ledger = CostLedger::new();

    // ---- Coordinator: session keys (Algorithm 1 line 8) ----
    let owned_keys;
    let keys = match keys {
        Some(k) => k,
        None => {
            owned_keys = ledger.time(Party::Coordinator, || generate_keypair(config.keysize, rng));
            &owned_keys
        }
    };
    let pk = keys.0.clone();

    // ---- Coordinator + users: Algorithm 1 ----
    let plan = plan_query(&config, lsp.space(), real_locations, keys, &mut ledger, rng)?;
    let delta_prime = plan.delta_prime;

    // ---- LSP: Algorithm 2 ----
    let answer_msg = lsp.process_query(&plan.query, &plan.location_sets, &mut ledger, rng)?;
    ledger.record_msg_labeled(
        Party::Lsp,
        Party::Coordinator,
        answer_msg.byte_len(&pk),
        "answer",
    );

    // ---- Coordinator: decryption ----
    let answer = decode_answer(keys, config.k, &answer_msg, &mut ledger)?;

    // Broadcast the answer to the other users.
    let answer_bytes = SCALAR_BYTES + 8 * answer.len();
    for u in 1..n {
        ledger.record_msg_labeled(
            Party::Coordinator,
            Party::User(u as u32),
            answer_bytes,
            "answer broadcast",
        );
    }

    let pois_returned = answer.len();
    ledger.count("pois_returned", pois_returned as u64);
    Ok(ProtocolRun {
        answer,
        pois_returned,
        delta_prime,
        report: ledger.report(),
        transcript: ledger.transcript().clone(),
    })
}

/// Eqn 11: sample a segment with probability `d̄_i / d`.
fn weighted_segment<R: Rng + ?Sized>(params: &PartitionParams, d: usize, rng: &mut R) -> usize {
    let mut pick = rng.gen_range(0..d);
    for (i, &size) in params.segment_sizes.iter().enumerate() {
        if pick < size {
            return i;
        }
        pick -= size;
    }
    unreachable!("segment sizes sum to d")
}

/// §6: the communication-optimal split. `ω` is the nearest integer to
/// `√(δ′/2)`; the inner vector covers `⌈δ′/ω⌉` columns per block.
pub fn opt_split(delta_prime: usize) -> (usize, usize) {
    let omega = ((delta_prime as f64 / 2.0).sqrt().round() as usize).max(1);
    let block_size = delta_prime.div_ceil(omega);
    (omega, block_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PpgnnConfig;
    use ppgnn_geo::Poi;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid_db(side: u32) -> Vec<Poi> {
        (0..side * side)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(
                        (i % side) as f64 / side as f64,
                        (i / side) as f64 / side as f64,
                    ),
                )
            })
            .collect()
    }

    fn base_config(variant: Variant) -> PpgnnConfig {
        PpgnnConfig {
            k: 3,
            d: 4,
            delta: 8,
            keysize: 128,
            sanitize: false,
            variant,
            ..PpgnnConfig::fast_test()
        }
    }

    fn check_answer_correct(run: &ProtocolRun, lsp: &Lsp, users: &[Point]) {
        let expected = lsp.plaintext_answer(users, lsp.config().k);
        assert_eq!(run.answer.len(), expected.len());
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6, "answer mismatch");
        }
    }

    #[test]
    fn plain_variant_exact_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lsp = Lsp::new(grid_db(10), base_config(Variant::Plain));
        let users = vec![
            Point::new(0.2, 0.3),
            Point::new(0.4, 0.1),
            Point::new(0.3, 0.5),
        ];
        let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
        assert!(run.delta_prime >= 8);
        assert!(run.report.comm_bytes_total > 0);
        assert!(run.report.user_cpu_secs > 0.0);
        assert!(run.report.lsp_cpu_secs > 0.0);
    }

    #[test]
    fn opt_variant_exact_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lsp = Lsp::new(grid_db(10), base_config(Variant::Opt));
        let users = vec![Point::new(0.8, 0.8), Point::new(0.6, 0.9)];
        let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
    }

    #[test]
    fn naive_variant_exact_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lsp = Lsp::new(grid_db(10), base_config(Variant::Naive));
        let users = vec![Point::new(0.1, 0.9), Point::new(0.2, 0.8)];
        let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
        assert_eq!(run.delta_prime, 8); // Naive evaluates exactly δ columns
    }

    #[test]
    fn single_user_reduces_to_section_3() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut cfg = base_config(Variant::Plain);
        cfg.delta = cfg.d; // δ = d when n = 1
        let lsp = Lsp::new(grid_db(10), cfg);
        let users = vec![Point::new(0.55, 0.55)];
        let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
        assert_eq!(run.delta_prime, 4);
    }

    #[test]
    fn shared_keys_accepted() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let keys = generate_keypair(128, &mut rng);
        let lsp = Lsp::new(grid_db(10), base_config(Variant::Plain));
        let users = vec![Point::new(0.3, 0.3), Point::new(0.5, 0.5)];
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
    }

    #[test]
    fn many_random_runs_always_correct() {
        // The planted position, segment choice and query index are random;
        // hammer the protocol to cover many (seg, x) combinations.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let keys = generate_keypair(128, &mut rng);
        let lsp = Lsp::new(grid_db(8), base_config(Variant::Plain));
        for i in 0..10 {
            let users: Vec<Point> = (0..4)
                .map(|j| Point::new(((i * 4 + j) % 7) as f64 / 7.0, ((i + j) % 5) as f64 / 5.0))
                .collect();
            let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
            check_answer_correct(&run, &lsp, &users);
        }
    }

    #[test]
    fn offline_randomness_still_exact_and_cheaper_online() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let keys = generate_keypair(256, &mut rng);
        let users = vec![Point::new(0.2, 0.3), Point::new(0.7, 0.1)];
        let pois = grid_db(10);
        let mut online = Vec::new();
        for offline_randomness in [false, true] {
            let cfg = PpgnnConfig {
                keysize: 256,
                offline_randomness,
                d: 5,
                delta: 25,
                ..base_config(Variant::Plain)
            };
            let lsp = Lsp::new(pois.clone(), cfg);
            let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
            check_answer_correct(&run, &lsp, &users);
            if offline_randomness {
                assert_eq!(run.report.counters["offline_randomizers"], 25);
            }
            online.push(run.report.user_cpu_secs);
        }
        assert!(
            online[1] < online[0],
            "pooled online cost {} must undercut full encryption {}",
            online[1],
            online[0]
        );
    }

    #[test]
    fn offline_randomness_with_opt_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let keys = generate_keypair(128, &mut rng);
        let users = vec![Point::new(0.4, 0.4), Point::new(0.5, 0.6)];
        let cfg = PpgnnConfig {
            offline_randomness: true,
            ..base_config(Variant::Opt)
        };
        let lsp = Lsp::new(grid_db(10), cfg);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        check_answer_correct(&run, &lsp, &users);
        assert!(run.report.counters["offline_randomizers"] > 0);
    }

    #[test]
    fn opt_split_is_near_sqrt() {
        for dp in [1usize, 2, 8, 50, 100, 200] {
            let (omega, block) = opt_split(dp);
            assert!(omega * block >= dp, "grid must cover δ′ = {dp}");
            assert!(omega >= 1 && block >= 1);
        }
        assert_eq!(opt_split(8).0, 2); // √(8/2) = 2 exactly (Figure 4)
        assert_eq!(opt_split(8).1, 4);
    }

    #[test]
    fn invalid_config_rejected_before_any_crypto() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut cfg = base_config(Variant::Plain);
        cfg.delta = 100; // > d^n for n=2, d=4 ⇒ 16
        let lsp = Lsp::new(grid_db(5), cfg);
        let users = vec![Point::ORIGIN, Point::new(0.5, 0.5)];
        assert!(matches!(
            run_ppgnn(&lsp, &users, &mut rng),
            Err(PpgnnError::DeltaUnreachable { .. })
        ));
    }

    #[test]
    fn sanitation_reduces_or_keeps_answer_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut cfg = base_config(Variant::Plain);
        cfg.sanitize = true;
        cfg.theta0 = 0.3; // aggressive: expect truncation
        cfg.k = 6;
        let lsp = Lsp::new(grid_db(10), cfg);
        let users = vec![Point::new(0.3, 0.4), Point::new(0.6, 0.5)];
        let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
        assert!(run.pois_returned <= 6);
        assert!(run.pois_returned >= 1);
        // The returned prefix must equal the head of the plaintext answer.
        let expected = lsp.plaintext_answer(&users, 6);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6);
        }
    }
}
