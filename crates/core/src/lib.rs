//! # PPGNN — Privacy Preserving Group Nearest Neighbor Search
//!
//! A complete implementation of the protocols from *"Privacy Preserving
//! Group Nearest Neighbor Search"* (EDBT 2018): a group of `n` users
//! retrieves the top-`k` POIs minimizing a monotone aggregate distance
//! from an LSP, under four privacy guarantees:
//!
//! * **Privacy I** — each user's location is hidden among `d` dummies;
//! * **Privacy II** — the group query and answer are hidden among
//!   `δ′ ≥ δ` candidate queries, resolved by Paillier private selection;
//! * **Privacy III** — the users learn exactly the requested answer and
//!   nothing else of the LSP's database;
//! * **Privacy IV** — under *full user collusion*, every user's location
//!   stays hidden in at least a `θ₀` fraction of the space, enforced by
//!   LSP-side answer sanitation against the inequality attack.
//!
//! ## Architecture
//!
//! | module | paper | what it does |
//! |---|---|---|
//! | [`params`] | §2, Table 3 | configuration & validation |
//! | [`partition`] | §4.1 Eqn 7–10 | exact partition-parameter solver |
//! | [`candidate`] | §4.1, Eqn 12 | candidate-query list & query index |
//! | [`stats`] | §5.3 | normal quantiles, Z-test, sample size (Eqn 16–17) |
//! | [`sanitize`] | §5.2 | inequality attack & longest-safe-prefix search |
//! | [`attack`] | §5.1 | the colluders' attack (for evaluation/tests) |
//! | [`encoding`] | §3.2 | packing answers into integers `< N` |
//! | [`engine`] | §1 | the pluggable "query answering black box" |
//! | [`messages`] | §4.2 | wire messages with exact byte accounting |
//! | [`lsp`] | Alg. 2 | LSP-side query processing |
//! | [`protocol`] | Alg. 1 + §3/§4/§6 | the user/coordinator driver for PPGNN, PPGNN-OPT and Naive |
//!
//! ## Quick start
//!
//! ```
//! use ppgnn_core::prelude::*;
//! use ppgnn_geo::{Point, Poi};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! // LSP's database.
//! let pois: Vec<Poi> = (0..100)
//!     .map(|i| Poi::new(i, Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0)))
//!     .collect();
//! let lsp = Lsp::new(pois, PpgnnConfig { keysize: 128, d: 4, delta: 8, k: 2, ..PpgnnConfig::fast_test() });
//! // Three users run the full protocol.
//! let users = vec![Point::new(0.1, 0.1), Point::new(0.3, 0.1), Point::new(0.2, 0.4)];
//! let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
//! assert!(!run.answer.is_empty());
//! ```

pub mod attack;
pub mod attack_exact;
pub mod candidate;
pub mod dynamic_lsp;
pub mod encoding;
pub mod engine;
pub mod error;
pub mod lsp;
pub mod messages;
pub mod params;
pub mod partition;
pub mod partition_cache;
pub mod protocol;
pub mod sanitize;
pub mod session;
pub mod stats;
pub mod wire;

/// Convenient re-exports of the main API surface.
pub mod prelude {
    pub use crate::dynamic_lsp::DynamicLsp;
    pub use crate::engine::{
        BruteForceEngine, DynamicMbmEngine, MbmEngine, QueryEngine, SnapshotEngine,
    };
    pub use crate::error::PpgnnError;
    pub use crate::lsp::{expand_candidates, Lsp};
    pub use crate::params::{HypothesisConfig, PpgnnConfig, Variant};
    pub use crate::protocol::{
        decode_answer, plan_query, plan_query_with, run_ppgnn, run_ppgnn_with_keys, ProtocolRun,
        QueryPlan, SessionCrypto,
    };
    pub use crate::session::PpgnnSession;
}

pub use prelude::*;
pub use protocol::opt_split;
