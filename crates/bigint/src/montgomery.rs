//! Montgomery-form modular arithmetic (CIOS multiplication) and windowed
//! exponentiation. This is the performance-critical path: every Paillier
//! encryption/decryption and every homomorphic scalar multiplication is a
//! modular exponentiation with a 1024–3072-bit modulus.

use crate::uint::BigUint;
use crate::{Limb, Wide, LIMB_BITS};

/// Reusable context for arithmetic modulo a fixed odd modulus `n`.
///
/// Values are kept in Montgomery form `aR mod n` with `R = 2^(64·len)`.
/// Construction computes `n' = -n^{-1} mod 2^64` and `R² mod n` once so that
/// repeated exponentiations amortize the setup.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: BigUint,
    /// Number of limbs of `n` (the width of all Montgomery representatives).
    len: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: Limb,
    /// `R² mod n`, used to convert into Montgomery form.
    rr: BigUint,
    /// `R mod n` = Montgomery form of 1.
    r1: BigUint,
}

/// Window size (bits) for the fixed-window exponentiation.
const WINDOW: usize = 4;

impl MontgomeryCtx {
    /// Creates a context for an odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `<= 1`.
    pub fn new(n: BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery modulus must be odd");
        assert!(!n.is_one() && !n.is_zero(), "modulus must be > 1");
        let len = n.limbs().len();
        let n0_inv = inv_limb(n.limbs()[0]);
        let r = BigUint::one().shl_bits(len * LIMB_BITS);
        let r1 = &r % &n;
        let rr = &(&r1 * &r1) % &n;
        MontgomeryCtx {
            n,
            len,
            n0_inv,
            rr,
            r1,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The Montgomery representative of `1` (`R mod n`).
    ///
    /// Useful as the multiplicative identity when composing chains of
    /// [`MontgomeryCtx::mont_mul`] calls externally (e.g. the interleaved
    /// multi-exponentiation in [`crate::multi_modpow`]).
    pub fn one_mont(&self) -> BigUint {
        self.r1.clone()
    }

    /// Converts `a` (reduced automatically) into Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        let a = if a >= &self.n { a % &self.n } else { a.clone() };
        self.mont_mul(&a, &self.rr)
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product `a·b·R^{-1} mod n` (CIOS).
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let len = self.len;
        let n = self.n.limbs();
        let mut t = vec![0 as Limb; len + 2];
        let zero = [0 as Limb];
        let a_limbs = if a.limbs().is_empty() {
            &zero[..]
        } else {
            a.limbs()
        };

        for i in 0..len {
            let ai = a_limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry: Wide = 0;
            #[allow(clippy::needless_range_loop)] // lockstep over t and b
            for j in 0..len {
                let bj = b.limbs().get(j).copied().unwrap_or(0);
                let x = (t[j] as Wide) + (ai as Wide) * (bj as Wide) + carry;
                t[j] = x as Limb;
                carry = x >> LIMB_BITS;
            }
            let x = (t[len] as Wide) + carry;
            t[len] = x as Limb;
            t[len + 1] = (x >> LIMB_BITS) as Limb;

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let x = (t[0] as Wide) + (m as Wide) * (n[0] as Wide);
            let mut carry = x >> LIMB_BITS;
            for j in 1..len {
                let x = (t[j] as Wide) + (m as Wide) * (n[j] as Wide) + carry;
                t[j - 1] = x as Limb;
                carry = x >> LIMB_BITS;
            }
            let x = (t[len] as Wide) + carry;
            t[len - 1] = x as Limb;
            let x2 = (t[len + 1] as Wide) + (x >> LIMB_BITS);
            t[len] = x2 as Limb;
            t[len + 1] = (x2 >> LIMB_BITS) as Limb;
        }
        debug_assert_eq!(t[len + 1], 0);
        let mut out = BigUint::from_limbs(t[..=len].to_vec());
        if out >= self.n {
            out = &out - &self.n;
        }
        out
    }

    /// `base^exp mod n` using fixed 4-bit windows.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % &self.n;
        }
        let base_m = self.to_mont(base);
        // Precompute base^0..base^(2^W - 1) in Montgomery form.
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(self.r1.clone());
        for i in 1..(1 << WINDOW) {
            let prev: &BigUint = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exp.bit_length();
        let mut acc = self.r1.clone();
        let mut started = false;
        // Consume the exponent in W-bit chunks from the top.
        let top_chunk = bits.div_ceil(WINDOW) * WINDOW;
        let mut pos = top_chunk;
        while pos > 0 {
            pos -= WINDOW;
            if started {
                for _ in 0..WINDOW {
                    acc = self.mont_mul(&acc, &acc.clone());
                }
            }
            let mut w = 0usize;
            for b in 0..WINDOW {
                if exp.bit(pos + (WINDOW - 1 - b)) {
                    w |= 1 << (WINDOW - 1 - b);
                }
            }
            if w != 0 {
                acc = self.mont_mul(&acc, &table[w]);
                started = true;
            } else if started {
                // squarings already applied; nothing to multiply
            }
        }
        if !started {
            // exponent was zero (handled above), defensive
            return BigUint::one() % &self.n;
        }
        self.from_mont(&acc)
    }
}

/// `-n^{-1} mod 2^64` via Newton–Hensel iteration on the low limb.
fn inv_limb(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1);
    // x = n0^{-1} mod 2^64 by 6 Newton steps (each doubles precision).
    let mut x: Limb = n0; // correct mod 2^3 already? use standard trick
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    debug_assert_eq!(n0.wrapping_mul(x), 1);
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn inv_limb_correct() {
        for n0 in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5679, 987654321] {
            let inv = inv_limb(n0);
            assert_eq!(n0.wrapping_mul(inv.wrapping_neg()), 1, "n0 = {n0}");
        }
    }

    #[test]
    fn mont_roundtrip() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(n);
        for v in [0u64, 1, 2, 999_999_999, 123456] {
            let x = BigUint::from(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mont_mul_matches_plain() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let mut n = BigUint::from(rng.gen::<u128>());
            if n.is_even() {
                n = n.add_limb(1);
            }
            let ctx = MontgomeryCtx::new(n.clone());
            let a = BigUint::from(rng.gen::<u128>()) % &n;
            let b = BigUint::from(rng.gen::<u128>()) % &n;
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, a.mod_mul(&b, &n));
        }
    }

    #[test]
    fn modpow_matches_plain_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..25 {
            let limbs: Vec<Limb> = (0..4).map(|_| rng.gen()).collect();
            let mut n = BigUint::from_limbs(limbs);
            if n.is_even() {
                n = n.add_limb(1);
            }
            let ctx = MontgomeryCtx::new(n.clone());
            let base = BigUint::from(rng.gen::<u128>());
            let exp = BigUint::from(rng.gen::<u128>());
            assert_eq!(ctx.modpow(&base, &exp), base.modpow_plain(&exp, &n));
        }
    }

    #[test]
    fn modpow_exponent_edge_cases() {
        let n = BigUint::from(101u64);
        let ctx = MontgomeryCtx::new(n.clone());
        assert_eq!(
            ctx.modpow(&BigUint::from(5u64), &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            ctx.modpow(&BigUint::from(5u64), &BigUint::one()).to_u64(),
            Some(5)
        );
        assert_eq!(
            ctx.modpow(&BigUint::zero(), &BigUint::from(3u64)),
            BigUint::zero()
        );
        // Exponent exactly at a window boundary (16 bits).
        let e = BigUint::from(0xFFFFu64);
        assert_eq!(
            ctx.modpow(&BigUint::from(3u64), &e),
            BigUint::from(3u64).modpow_plain(&e, &n)
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = MontgomeryCtx::new(BigUint::from(100u64));
    }

    #[test]
    fn base_larger_than_modulus() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(n.clone());
        let base = BigUint::from(10_000u64);
        let exp = BigUint::from(13u64);
        assert_eq!(ctx.modpow(&base, &exp), base.modpow_plain(&exp, &n));
    }
}
