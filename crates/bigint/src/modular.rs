//! Modular arithmetic: GCD/LCM, extended Euclid, modular inverse, and
//! modular exponentiation (dispatching to Montgomery form for odd moduli).

use crate::int::{BigInt, Sign};
use crate::montgomery::MontgomeryCtx;
use crate::uint::BigUint;

/// Result of the extended Euclidean algorithm:
/// `gcd == a*x + b*y` (over signed integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    pub gcd: BigUint,
    pub x: BigInt,
    pub y: BigInt,
}

impl BigUint {
    /// Greatest common divisor by the Euclidean algorithm.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple; `lcm(0, x) == 0`.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Extended Euclidean algorithm returning Bézout coefficients.
    pub fn extended_gcd(&self, other: &BigUint) -> ExtendedGcd {
        let mut old_r = BigInt::from_biguint(Sign::Plus, self.clone());
        let mut r = BigInt::from_biguint(Sign::Plus, other.clone());
        let mut old_s = BigInt::one();
        let mut s = BigInt::zero();
        let mut old_t = BigInt::zero();
        let mut t = BigInt::one();
        while !r.is_zero() {
            let q = old_r.div_floor_magnitude(&r);
            let tmp_r = &old_r - &(&q * &r);
            old_r = std::mem::replace(&mut r, tmp_r);
            let tmp_s = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, tmp_s);
            let tmp_t = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, tmp_t);
        }
        ExtendedGcd {
            gcd: old_r.into_magnitude(),
            x: old_s,
            y: old_t,
        }
    }

    /// Modular inverse: `self^-1 mod modulus`, or `None` when
    /// `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        assert!(!modulus.is_zero(), "modular inverse with zero modulus");
        if modulus.is_one() {
            return Some(BigUint::zero());
        }
        let a = self % modulus;
        let e = a.extended_gcd(modulus);
        if !e.gcd.is_one() {
            return None;
        }
        Some(e.x.rem_euclid(modulus))
    }

    /// `(self + other) mod modulus`; operands must already be reduced.
    pub fn mod_add(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(self < modulus && other < modulus);
        let s = self + other;
        if &s >= modulus {
            &s - modulus
        } else {
            s
        }
    }

    /// `(self - other) mod modulus`; operands must already be reduced.
    pub fn mod_sub(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        debug_assert!(self < modulus && other < modulus);
        if self >= other {
            self - other
        } else {
            &(self + modulus) - other
        }
    }

    /// `(self * other) mod modulus`.
    pub fn mod_mul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        &(self * other) % modulus
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Odd moduli use Montgomery form with a fixed 4-bit window; even moduli
    /// fall back to plain square-and-multiply with Knuth-division reduction.
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if modulus.is_odd() {
            let ctx = MontgomeryCtx::new(modulus.clone());
            return ctx.modpow(self, exp);
        }
        // Even modulus: Barrett reduction (division-free) beats the
        // Knuth-division fallback.
        crate::barrett::BarrettCtx::new(modulus.clone()).modpow(self, exp)
    }

    /// Square-and-multiply modpow without Montgomery form. Public so tests
    /// can cross-check the Montgomery path against it.
    pub fn modpow_plain(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        let mut base = self % modulus;
        let mut acc = BigUint::one() % modulus;
        for i in 0..exp.bit_length() {
            if exp.bit(i) {
                acc = acc.mod_mul(&base, modulus);
            }
            if i + 1 < exp.bit_length() {
                base = base.mod_mul(&base.clone(), modulus);
            }
        }
        acc
    }
}

impl BigInt {
    /// Euclidean remainder mapped into `[0, modulus)`.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        let mag_mod = self.magnitude() % modulus;
        match self.sign() {
            Sign::Plus => mag_mod,
            Sign::Minus => {
                if mag_mod.is_zero() {
                    mag_mod
                } else {
                    modulus - &mag_mod
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(b(12).gcd(&b(18)).to_u64(), Some(6));
        assert_eq!(b(0).gcd(&b(5)).to_u64(), Some(5));
        assert_eq!(b(5).gcd(&b(0)).to_u64(), Some(5));
        assert_eq!(b(17).gcd(&b(13)).to_u64(), Some(1));
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(b(4).lcm(&b(6)).to_u64(), Some(12));
        assert!(b(0).lcm(&b(7)).is_zero());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let a = b(rng.gen::<u64>() as u128 + 1);
            let m = b(rng.gen::<u64>() as u128 + 1);
            let e = a.extended_gcd(&m);
            let lhs = &(&e.x * &BigInt::from_biguint(Sign::Plus, a.clone()))
                + &(&e.y * &BigInt::from_biguint(Sign::Plus, m.clone()));
            assert_eq!(lhs, BigInt::from_biguint(Sign::Plus, e.gcd.clone()));
            assert_eq!(e.gcd, a.gcd(&m));
        }
    }

    #[test]
    fn mod_inverse_correct() {
        let m = b(1_000_000_007);
        for v in [1u128, 2, 3, 999, 123456789] {
            let inv = b(v).mod_inverse(&m).unwrap();
            assert_eq!(b(v).mod_mul(&inv, &m), BigUint::one());
        }
        // Non-invertible case.
        assert_eq!(b(6).mod_inverse(&b(9)), None);
        // Value larger than modulus gets reduced first.
        let big = &m.mul_limb(5) + &b(3);
        let inv = big.mod_inverse(&m).unwrap();
        assert_eq!(big.mod_mul(&inv, &m), BigUint::one());
    }

    #[test]
    fn mod_add_sub_roundtrip() {
        let m = b(101);
        let x = b(55);
        let y = b(77);
        let s = x.mod_add(&y, &m);
        assert_eq!(s.to_u64(), Some((55 + 77) % 101));
        assert_eq!(s.mod_sub(&y, &m), x);
    }

    #[test]
    fn modpow_matches_u128_oracle() {
        fn pow_mod(mut b_: u128, mut e: u128, m: u128) -> u128 {
            let mut acc = 1u128 % m;
            b_ %= m;
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc * b_ % m;
                }
                b_ = b_ * b_ % m;
                e >>= 1;
            }
            acc
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let base = rng.gen::<u32>() as u128;
            let exp = rng.gen::<u32>() as u128;
            let modulus = rng.gen_range(2u128..1 << 32);
            let got = b(base).modpow(&b(exp), &b(modulus));
            assert_eq!(got.to_u128(), Some(pow_mod(base, exp, modulus)));
        }
    }

    #[test]
    fn modpow_even_modulus() {
        let got = b(7).modpow(&b(13), &b(100));
        // 7^13 mod 100 = 7 (7^4=01 mod 100 cycle) — compute oracle directly.
        let mut acc = 1u128;
        for _ in 0..13 {
            acc = acc * 7 % 100;
        }
        assert_eq!(got.to_u128(), Some(acc));
    }

    #[test]
    fn modpow_edges() {
        assert_eq!(b(5).modpow(&b(0), &b(7)), BigUint::one());
        assert_eq!(b(5).modpow(&b(100), &BigUint::one()), BigUint::zero());
        assert_eq!(b(0).modpow(&b(5), &b(7)), BigUint::zero());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p.
        let p = b(1_000_000_007);
        let pm1 = &p - &BigUint::one();
        for a in [2u128, 3, 65537, 999999999] {
            assert_eq!(b(a).modpow(&pm1, &p), BigUint::one());
        }
    }

    #[test]
    fn rem_euclid_negative() {
        let neg = BigInt::from_biguint(Sign::Minus, b(7));
        assert_eq!(neg.rem_euclid(&b(5)).to_u64(), Some(3));
        let neg_exact = BigInt::from_biguint(Sign::Minus, b(10));
        assert_eq!(neg_exact.rem_euclid(&b(5)).to_u64(), Some(0));
    }
}
