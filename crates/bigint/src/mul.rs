//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold. The threshold was picked empirically; Karatsuba's constant
//! factor only pays off once operands exceed ~32 limbs (2048 bits), which
//! matters for the ε₂ (mod N³) arithmetic in the optimized protocol.

use core::ops::{Mul, MulAssign};

use crate::uint::BigUint;
use crate::{Limb, Wide, LIMB_BITS};

/// Operand size (in limbs) above which Karatsuba multiplication is used.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook multiply-accumulate: `acc[i..] += a * b`.
fn mac_vec(acc: &mut [Limb], a: &[Limb], b: &[Limb]) {
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Wide = 0;
        for (j, &bj) in b.iter().enumerate() {
            let idx = i + j;
            let t = (ai as Wide) * (bj as Wide) + (acc[idx] as Wide) + carry;
            acc[idx] = t as Limb;
            carry = t >> LIMB_BITS;
        }
        // Propagate the remaining carry.
        let mut idx = i + b.len();
        while carry != 0 {
            let t = (acc[idx] as Wide) + carry;
            acc[idx] = t as Limb;
            carry = t >> LIMB_BITS;
            idx += 1;
        }
    }
}

fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut out = vec![0 as Limb; a.len() + b.len() + 1];
    mac_vec(&mut out, a, b);
    out
}

/// Karatsuba: split both operands at `half` limbs and recurse.
/// `a*b = hi_a*hi_b*B^2 + ((hi_a+lo_a)(hi_b+lo_b) - hi*hi - lo*lo)*B + lo_a*lo_b`.
fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.len().min(b.len()) <= KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a_lo, a_hi) = split(a, half);
    let (b_lo, b_hi) = split(b, half);

    let lo = BigUint::from_limbs(mul_karatsuba(&a_lo, &b_lo));
    let hi = BigUint::from_limbs(mul_karatsuba(&a_hi, &b_hi));
    let a_sum = &BigUint::from_limbs(a_lo) + &BigUint::from_limbs(a_hi);
    let b_sum = &BigUint::from_limbs(b_lo) + &BigUint::from_limbs(b_hi);
    let mid_full = BigUint::from_limbs(mul_karatsuba(a_sum.limbs(), b_sum.limbs()));
    let mid = &(&mid_full - &lo) - &hi;

    let result = &(&lo + &mid.shl_bits(half * LIMB_BITS)) + &hi.shl_bits(2 * half * LIMB_BITS);
    result.limbs().to_vec()
}

fn split(x: &[Limb], at: usize) -> (Vec<Limb>, Vec<Limb>) {
    if x.len() <= at {
        (x.to_vec(), Vec::new())
    } else {
        (x[..at].to_vec(), x[at..].to_vec())
    }
}

impl BigUint {
    /// `self * other`, allocating.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(other.limbs.len()) > KARATSUBA_THRESHOLD {
            BigUint::from_limbs(mul_karatsuba(&self.limbs, &other.limbs))
        } else {
            BigUint::from_limbs(mul_schoolbook(&self.limbs, &other.limbs))
        }
    }
}

impl<'b> Mul<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &'b BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}
impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}
impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}
impl Mul<BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}
impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u64, 0u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (0xDEADBEEF, 0xCAFEBABE),
            (1 << 63, 2),
        ];
        for (a, b) in cases {
            let got = &BigUint::from(a) * &BigUint::from(b);
            assert_eq!(got.to_u128(), Some(a as u128 * b as u128), "{a} * {b}");
        }
    }

    #[test]
    fn mul_zero_identity() {
        let x = BigUint::from(123456789u64);
        assert!((&x * &BigUint::zero()).is_zero());
        assert_eq!(&x * &BigUint::one(), x);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let n = KARATSUBA_THRESHOLD * 2 + rng.gen_range(0..20);
            let a: Vec<Limb> = (0..n).map(|_| rng.gen()).collect();
            let b: Vec<Limb> = (0..n + 3).map(|_| rng.gen()).collect();
            let k = BigUint::from_limbs(mul_karatsuba(&a, &b));
            let s = BigUint::from_limbs(mul_schoolbook(&a, &b));
            assert_eq!(k, s);
        }
    }

    #[test]
    fn karatsuba_unbalanced_operands() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let a: Vec<Limb> = (0..100).map(|_| rng.gen()).collect();
        let b: Vec<Limb> = (0..40).map(|_| rng.gen()).collect();
        assert_eq!(
            BigUint::from_limbs(mul_karatsuba(&a, &b)),
            BigUint::from_limbs(mul_schoolbook(&a, &b))
        );
    }

    #[test]
    fn mul_commutative_and_associative_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..20 {
            let a = BigUint::from(rng.gen::<u128>());
            let b = BigUint::from(rng.gen::<u128>());
            let c = BigUint::from(rng.gen::<u64>());
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        }
    }

    #[test]
    fn distributes_over_add() {
        let a = BigUint::from(0xFFFF_FFFF_FFFF_FFFFu64);
        let b = BigUint::from(u128::MAX);
        let c = BigUint::from(12345u64);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn square_is_self_mul() {
        let x = BigUint::from(u128::MAX).pow(3);
        assert_eq!(x.square(), &x * &x);
    }
}
