//! Arbitrary-precision integer arithmetic for the PPGNN reproduction.
//!
//! The original paper implements its cryptography on top of GMP (big
//! integers) and libhcs (generalized Paillier). This crate is the
//! from-scratch replacement for the former: an unsigned big integer
//! ([`BigUint`]) with the full arithmetic kit needed by a Paillier-style
//! cryptosystem, plus a signed wrapper ([`BigInt`]) used by the extended
//! Euclidean algorithm.
//!
//! Highlights:
//!
//! * limb-based (64-bit) representation, little-endian, always normalized;
//! * schoolbook and Karatsuba multiplication with an empirical threshold;
//! * Knuth Algorithm D long division;
//! * Montgomery multiplication ([`MontgomeryCtx`]) and windowed modular
//!   exponentiation;
//! * extended-Euclid modular inverse, binary GCD and LCM;
//! * Miller–Rabin primality testing and random prime generation;
//! * hex / decimal parsing and formatting, big-endian byte serialization.
//!
//! # Example
//!
//! ```
//! use ppgnn_bigint::BigUint;
//!
//! let a = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
//! let b = BigUint::from(42u64);
//! let (q, r) = (&a * &b).div_rem(&a);
//! assert_eq!(q, b);
//! assert!(r.is_zero());
//! ```

mod barrett;
mod div;
mod fmt;
mod int;
mod modular;
mod montgomery;
mod mul;
mod multiexp;
mod prime;
mod random;
mod uint;

pub use barrett::BarrettCtx;
pub use int::{BigInt, Sign};
pub use modular::ExtendedGcd;
pub use montgomery::MontgomeryCtx;
pub use multiexp::{modpow_with_table, multi_modpow, MontWindowTable, DEFAULT_WINDOW};
pub use prime::{gen_prime, is_probable_prime, MillerRabin};
pub use random::UniformBigUint;
pub use uint::{BigUint, ParseBigUintError};

/// Number of bits in one limb of a [`BigUint`].
pub const LIMB_BITS: usize = 64;

/// One limb of a [`BigUint`].
pub type Limb = u64;

/// Double-width type used for limb-level intermediate arithmetic.
pub(crate) type Wide = u128;
