//! Random generation of big integers from any [`rand::Rng`] source.

use rand::Rng;

use crate::uint::BigUint;
use crate::{Limb, LIMB_BITS};

/// Extension trait: uniform sampling of [`BigUint`] values.
pub trait UniformBigUint {
    /// Uniformly random integer in `[0, 2^bits)`.
    fn gen_biguint(&mut self, bits: usize) -> BigUint;

    /// Uniformly random integer in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint;

    /// Uniformly random integer in `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint;
}

impl<R: Rng + ?Sized> UniformBigUint for R {
    fn gen_biguint(&mut self, bits: usize) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs = bits.div_ceil(LIMB_BITS);
        let mut v: Vec<Limb> = (0..limbs).map(|_| self.gen()).collect();
        let extra = limbs * LIMB_BITS - bits;
        if extra > 0 {
            let last = v.last_mut().expect("at least one limb");
            *last >>= extra;
        }
        BigUint::from_limbs(v)
    }

    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "empty sampling range");
        let bits = bound.bit_length();
        loop {
            let candidate = self.gen_biguint(bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    fn gen_biguint_range(&mut self, low: &BigUint, high: &BigUint) -> BigUint {
        assert!(low < high, "empty sampling range");
        let width = high - low;
        low + &self.gen_biguint_below(&width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gen_respects_bit_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for bits in [0usize, 1, 7, 64, 65, 130, 1024] {
            for _ in 0..20 {
                let x = rng.gen_biguint(bits);
                assert!(x.bit_length() <= bits, "bits={bits} got {}", x.bit_length());
            }
        }
    }

    #[test]
    fn gen_hits_high_bits_sometimes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let hit = (0..200).any(|_| rng.gen_biguint(128).bit_length() == 128);
        assert!(hit, "top bit should be set about half the time");
    }

    #[test]
    fn below_always_below() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let bound = BigUint::from(1000u64);
        for _ in 0..500 {
            assert!(rng.gen_biguint_below(&bound) < bound);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let bound = BigUint::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_biguint_below(&bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let low = BigUint::from(100u64);
        let high = BigUint::from(110u64);
        for _ in 0..200 {
            let x = rng.gen_biguint_range(&low, &high);
            assert!(x >= low && x < high);
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = rng.gen_biguint_below(&BigUint::zero());
    }
}
