//! Minimal signed big integer: sign + magnitude. Only what the extended
//! Euclidean algorithm and inequality-attack geometry need — add, sub,
//! mul, division by magnitude, and comparisons.

use core::cmp::Ordering;
use core::ops::{Add, Mul, Neg, Sub};

use crate::uint::BigUint;

/// Sign of a [`BigInt`]. Zero is canonically [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    Plus,
    Minus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// Signed arbitrary-precision integer (sign–magnitude representation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            magnitude: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            magnitude: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude; zero is normalized to `Plus`.
    pub fn from_biguint(sign: Sign, magnitude: BigUint) -> Self {
        let sign = if magnitude.is_zero() {
            Sign::Plus
        } else {
            sign
        };
        BigInt { sign, magnitude }
    }

    /// The sign (zero reports [`Sign::Plus`]).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Consumes `self`, returning the absolute value.
    pub fn into_magnitude(self) -> BigUint {
        self.magnitude
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus && !self.magnitude.is_zero()
    }

    /// Quotient of magnitudes as a non-negative `BigInt` — the step value
    /// used by the extended Euclid loop (both operands non-negative there).
    pub fn div_floor_magnitude(&self, other: &BigInt) -> BigInt {
        BigInt::from_biguint(Sign::Plus, &self.magnitude / &other.magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::from_biguint(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_biguint(Sign::Plus, BigUint::from(v as u64))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(Sign::Plus, v)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_biguint(self.sign.flip(), self.magnitude)
    }
}
impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_biguint(self.sign.flip(), self.magnitude.clone())
    }
}

impl<'b> Add<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &'b BigInt) -> BigInt {
        if self.sign == rhs.sign {
            BigInt::from_biguint(self.sign, &self.magnitude + &rhs.magnitude)
        } else {
            // Opposite signs: result takes the sign of the larger magnitude.
            match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_biguint(self.sign, &self.magnitude - &rhs.magnitude)
                }
                Ordering::Less => BigInt::from_biguint(rhs.sign, &rhs.magnitude - &self.magnitude),
            }
        }
    }
}
impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl<'b> Sub<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &'b BigInt) -> BigInt {
        self + &(-rhs)
    }
}
impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl<'b> Mul<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &'b BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_biguint(sign, &self.magnitude * &rhs.magnitude)
    }
}
impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl core::fmt::Display for BigInt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_sign_normalized() {
        let z = BigInt::from_biguint(Sign::Minus, BigUint::zero());
        assert_eq!(z.sign(), Sign::Plus);
        assert!(!z.is_negative());
        assert_eq!(z, BigInt::zero());
    }

    #[test]
    fn add_matches_i64() {
        for a in [-5i64, -1, 0, 1, 7] {
            for b in [-9i64, -2, 0, 3, 11] {
                assert_eq!(&i(a) + &i(b), i(a + b), "{a}+{b}");
                assert_eq!(&i(a) - &i(b), i(a - b), "{a}-{b}");
                assert_eq!(&i(a) * &i(b), i(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-5) < i(3));
        assert!(i(-5) < i(-2));
        assert!(i(7) > i(2));
        assert_eq!(i(0).cmp(&i(0)), Ordering::Equal);
        assert!(i(0) > i(-1));
    }

    #[test]
    fn negation_involutive() {
        let x = i(-42);
        assert_eq!(-(-x.clone()), x);
        assert_eq!((-BigInt::zero()), BigInt::zero());
    }

    #[test]
    fn display_negative() {
        assert_eq!(i(-123).to_string(), "-123");
        assert_eq!(i(0).to_string(), "0");
        assert_eq!(i(99).to_string(), "99");
    }
}
