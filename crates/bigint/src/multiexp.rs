//! Fixed-window tables and Straus–Shamir interleaved multi-exponentiation.
//!
//! The private-selection product `A ⨂ [v]` (paper Eqn 4) evaluates, per
//! matrix row, `Π_i c_i^{a_i} mod N^{s+1}` — a multi-exponentiation whose
//! bases (the indicator ciphertexts `c_i`) are *shared across every row*
//! while only the exponents change. Two classic tricks exploit that shape:
//!
//! 1. **Fixed-window tables** ([`MontWindowTable`]): precompute
//!    `c^0..c^(2^w-1)` in Montgomery form once per base, then reuse the
//!    table for every exponentiation of that base. `MontgomeryCtx::modpow`
//!    rebuilds this table on every call; hoisting it across the δ′×δ′
//!    matrix removes `(rows-1) · (2^w-2)` full-width multiplications per
//!    base.
//! 2. **Straus–Shamir interleaving** ([`multi_modpow`]): evaluate all
//!    bases of one product in lockstep so the squaring chain — the
//!    dominant cost, one squaring per exponent bit — is paid *once per
//!    product* instead of once per base. For `k` bases with ℓ-bit
//!    exponents the naive cost is `k·ℓ` squarings + `k·ℓ/w` multiplies;
//!    interleaved it is `ℓ` squarings + `k·ℓ/w` multiplies.
//!
//! Everything here stays in Montgomery form between steps; only the final
//! result is converted back.

use crate::montgomery::MontgomeryCtx;
use crate::uint::BigUint;

/// Default window width (bits). Matches `MontgomeryCtx::modpow`'s internal
/// window: at 4 bits the table is 16 entries (~2 KiB per base at 1024-bit
/// moduli on the ε₁ ciphertext ring) and the per-window multiply count is
/// within a few percent of the optimum for 32–2048-bit exponents.
pub const DEFAULT_WINDOW: usize = 4;

/// A precomputed fixed-window power table for one base, in Montgomery form.
///
/// `powers[i] = base^i · R mod n` for `i ∈ 0..2^window`. Building the table
/// costs `2^window - 2` Montgomery multiplications plus one conversion; each
/// subsequent exponentiation via [`modpow_with_table`] or [`multi_modpow`]
/// reuses it for free.
#[derive(Debug, Clone)]
pub struct MontWindowTable {
    window: usize,
    powers: Vec<BigUint>,
}

impl MontWindowTable {
    /// Builds the table for `base` with the given window width (1..=8 bits).
    ///
    /// # Panics
    /// Panics if `window` is outside `1..=8` (a 9-bit window would already
    /// need a 512-entry table — beyond any sensible trade-off here).
    pub fn build(ctx: &MontgomeryCtx, base: &BigUint, window: usize) -> Self {
        assert!((1..=8).contains(&window), "window must be in 1..=8");
        let base_m = ctx.to_mont(base);
        let mut powers = Vec::with_capacity(1 << window);
        powers.push(ctx.one_mont());
        for i in 1..(1 << window) {
            let prev: &BigUint = &powers[i - 1];
            powers.push(ctx.mont_mul(prev, &base_m));
        }
        MontWindowTable { window, powers }
    }

    /// Builds the table with [`DEFAULT_WINDOW`].
    pub fn build_default(ctx: &MontgomeryCtx, base: &BigUint) -> Self {
        Self::build(ctx, base, DEFAULT_WINDOW)
    }

    /// The window width in bits.
    pub fn window(&self) -> usize {
        self.window
    }

    /// `base^w` in Montgomery form for `w < 2^window`.
    fn power(&self, w: usize) -> &BigUint {
        &self.powers[w]
    }
}

/// Extracts the `window`-bit chunk of `exp` whose least-significant bit is
/// at position `pos`.
fn window_at(exp: &BigUint, pos: usize, window: usize) -> usize {
    let mut w = 0usize;
    for b in 0..window {
        if exp.bit(pos + b) {
            w |= 1 << b;
        }
    }
    w
}

/// `base^exp mod n` reusing a prebuilt window table.
///
/// Identical output to `ctx.modpow(base, exp)` but skips the per-call table
/// build — the win when the same base is raised to many exponents.
pub fn modpow_with_table(ctx: &MontgomeryCtx, table: &MontWindowTable, exp: &BigUint) -> BigUint {
    let window = table.window;
    let bits = exp.bit_length();
    if bits == 0 {
        return BigUint::one() % ctx.modulus();
    }
    let mut acc = ctx.one_mont();
    let mut started = false;
    let mut pos = bits.div_ceil(window) * window;
    while pos > 0 {
        pos -= window;
        if started {
            for _ in 0..window {
                acc = ctx.mont_mul(&acc, &acc.clone());
            }
        }
        let w = window_at(exp, pos, window);
        if w != 0 {
            acc = ctx.mont_mul(&acc, table.power(w));
            started = true;
        }
    }
    if !started {
        return BigUint::one() % ctx.modulus();
    }
    ctx.from_mont(&acc)
}

/// Straus–Shamir interleaved multi-exponentiation:
/// `Π_i tables[i].base ^ exps[i] mod n`.
///
/// All tables must share the same window width. Bases whose exponent is
/// zero contribute nothing (their every window is empty), so callers can
/// pass sparse exponent vectors without pre-filtering.
///
/// # Panics
/// Panics if `tables.len() != exps.len()` or the window widths disagree.
pub fn multi_modpow(
    ctx: &MontgomeryCtx,
    tables: &[&MontWindowTable],
    exps: &[&BigUint],
) -> BigUint {
    assert_eq!(
        tables.len(),
        exps.len(),
        "multi_modpow: one exponent per table"
    );
    if tables.is_empty() {
        return BigUint::one() % ctx.modulus();
    }
    let window = tables[0].window;
    assert!(
        tables.iter().all(|t| t.window == window),
        "multi_modpow: all tables must share one window width"
    );
    let bits = exps.iter().map(|e| e.bit_length()).max().unwrap_or(0);
    if bits == 0 {
        return BigUint::one() % ctx.modulus();
    }
    let mut acc = ctx.one_mont();
    let mut started = false;
    let mut pos = bits.div_ceil(window) * window;
    while pos > 0 {
        pos -= window;
        if started {
            // One shared squaring chain for every base — the Straus saving.
            for _ in 0..window {
                acc = ctx.mont_mul(&acc, &acc.clone());
            }
        }
        for (table, exp) in tables.iter().zip(exps.iter()) {
            let w = window_at(exp, pos, window);
            if w != 0 {
                acc = ctx.mont_mul(&acc, table.power(w));
                started = true;
            }
        }
    }
    if !started {
        return BigUint::one() % ctx.modulus();
    }
    ctx.from_mont(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Limb;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_odd_modulus(rng: &mut ChaCha8Rng, limbs: usize) -> BigUint {
        let v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
        let mut n = BigUint::from_limbs(v);
        if n.is_even() {
            n = n.add_limb(1);
        }
        n
    }

    #[test]
    fn table_modpow_matches_plain() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..20 {
            let n = random_odd_modulus(&mut rng, 3);
            let ctx = MontgomeryCtx::new(n.clone());
            let base = BigUint::from(rng.gen::<u128>());
            let table = MontWindowTable::build_default(&ctx, &base);
            for _ in 0..4 {
                let exp = BigUint::from(rng.gen::<u128>());
                assert_eq!(
                    modpow_with_table(&ctx, &table, &exp),
                    base.modpow_plain(&exp, &n)
                );
            }
        }
    }

    #[test]
    fn table_modpow_all_windows() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let n = random_odd_modulus(&mut rng, 2);
        let ctx = MontgomeryCtx::new(n.clone());
        let base = BigUint::from(rng.gen::<u128>());
        let exp = BigUint::from(rng.gen::<u128>());
        let want = base.modpow_plain(&exp, &n);
        for window in 1..=8 {
            let table = MontWindowTable::build(&ctx, &base, window);
            assert_eq!(modpow_with_table(&ctx, &table, &exp), want, "w={window}");
        }
    }

    #[test]
    fn table_modpow_edge_exponents() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(n.clone());
        let base = BigUint::from(123_456u64);
        let table = MontWindowTable::build_default(&ctx, &base);
        assert_eq!(
            modpow_with_table(&ctx, &table, &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(modpow_with_table(&ctx, &table, &BigUint::one()), base);
        // Window-boundary exponent.
        let e = BigUint::from(0xFFFFu64);
        assert_eq!(
            modpow_with_table(&ctx, &table, &e),
            base.modpow_plain(&e, &n)
        );
    }

    #[test]
    fn multi_modpow_matches_product_of_modpows() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..10 {
            let n = random_odd_modulus(&mut rng, 3);
            let ctx = MontgomeryCtx::new(n.clone());
            let k = 1 + (rng.gen::<usize>() % 6);
            let bases: Vec<BigUint> = (0..k).map(|_| BigUint::from(rng.gen::<u128>())).collect();
            let exps: Vec<BigUint> = (0..k)
                .map(|i| {
                    if i % 3 == 0 {
                        BigUint::zero() // exercise sparse exponents
                    } else {
                        BigUint::from(rng.gen::<u128>())
                    }
                })
                .collect();
            let tables: Vec<MontWindowTable> = bases
                .iter()
                .map(|b| MontWindowTable::build_default(&ctx, b))
                .collect();
            let table_refs: Vec<&MontWindowTable> = tables.iter().collect();
            let exp_refs: Vec<&BigUint> = exps.iter().collect();
            let got = multi_modpow(&ctx, &table_refs, &exp_refs);

            let mut want = BigUint::one();
            for (b, e) in bases.iter().zip(exps.iter()) {
                want = want.mod_mul(&b.modpow_plain(e, &n), &n);
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn multi_modpow_empty_and_zero() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(n.clone());
        assert_eq!(multi_modpow(&ctx, &[], &[]), BigUint::one());
        let base = BigUint::from(5u64);
        let table = MontWindowTable::build_default(&ctx, &base);
        let zero = BigUint::zero();
        assert_eq!(multi_modpow(&ctx, &[&table], &[&zero]), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "one exponent per table")]
    fn multi_modpow_length_mismatch() {
        let ctx = MontgomeryCtx::new(BigUint::from(97u64));
        let table = MontWindowTable::build_default(&ctx, &BigUint::from(5u64));
        let e = BigUint::one();
        let _ = multi_modpow(&ctx, &[&table], &[&e, &e]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn multi_modpow_window_mismatch() {
        let ctx = MontgomeryCtx::new(BigUint::from(97u64));
        let t1 = MontWindowTable::build(&ctx, &BigUint::from(5u64), 3);
        let t2 = MontWindowTable::build(&ctx, &BigUint::from(7u64), 4);
        let e = BigUint::one();
        let _ = multi_modpow(&ctx, &[&t1, &t2], &[&e, &e]);
    }
}
