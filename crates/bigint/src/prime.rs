//! Primality testing (Miller–Rabin) and random prime generation, the
//! key-generation substrate for the Paillier/Damgård–Jurik cryptosystem.

use rand::Rng;

use crate::random::UniformBigUint;
use crate::uint::BigUint;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// A reusable Miller–Rabin tester with a configurable round count.
#[derive(Debug, Clone, Copy)]
pub struct MillerRabin {
    rounds: usize,
}

impl Default for MillerRabin {
    fn default() -> Self {
        // 2^-80 error bound for random candidates.
        MillerRabin { rounds: 40 }
    }
}

impl MillerRabin {
    /// Creates a tester performing `rounds` random-base rounds.
    pub fn new(rounds: usize) -> Self {
        MillerRabin { rounds }
    }

    /// Probabilistic primality test.
    pub fn test<R: Rng + ?Sized>(&self, n: &BigUint, rng: &mut R) -> bool {
        if n < &BigUint::from(2u64) {
            return false;
        }
        // Trial division by small primes (also catches the primes themselves).
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from(p);
            if n == &pb {
                return true;
            }
            if (n % &pb).is_zero() {
                return false;
            }
        }

        // Write n - 1 = d * 2^s with d odd.
        let n_minus_1 = n - &BigUint::one();
        let s = n_minus_1.trailing_zeros().expect("n > 2 so n-1 > 0");
        let d = n_minus_1.shr_bits(s);

        let two = BigUint::from(2u64);
        let n_minus_2 = n - &two;
        'witness: for _ in 0..self.rounds {
            let a = rng.gen_biguint_range(&two, &n_minus_2);
            let mut x = a.modpow(&d, n);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x.clone(), n);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

/// Convenience wrapper: Miller–Rabin with the default 40 rounds.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    MillerRabin::default().test(n, rng)
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top **two** bits are forced to 1 so that the product of two such
/// primes has exactly `2·bits` bits — required so the Paillier modulus `N`
/// reaches its nominal key size.
///
/// # Panics
/// Panics if `bits < 3` (no two-top-bit odd prime exists below that).
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "prime size too small: {bits} bits");
    let tester = MillerRabin::default();
    loop {
        let mut candidate = rng.gen_biguint(bits);
        candidate.set_bit(bits - 1, true);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if tester.test(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn small_primes_recognized() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 199, 211, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from(p), &mut rng), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for c in [0u64, 1, 4, 6, 9, 15, 200, 65536, 1_000_000_005] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that fool a^(n-1) = 1 testing but not MR.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn product_of_two_primes_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = gen_prime(32, &mut rng);
        let q = gen_prime(32, &mut rng);
        assert!(!is_probable_prime(&(&p * &q), &mut rng));
    }

    #[test]
    fn gen_prime_has_exact_bits_and_top_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_length(), bits);
            assert!(p.bit(bits - 2), "second-top bit forced");
            assert!(p.is_odd());
        }
    }

    #[test]
    fn product_of_generated_primes_has_double_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let p = gen_prime(64, &mut rng);
        let q = gen_prime(64, &mut rng);
        assert_eq!((&p * &q).bit_length(), 128);
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m127 = BigUint::one().shl_bits(127).sub_limb(1);
        assert!(is_probable_prime(&m127, &mut rng));
        // 2^128 - 1 factors (it is divisible by 3).
        let m128 = BigUint::one().shl_bits(128).sub_limb(1);
        assert!(!is_probable_prime(&m128, &mut rng));
    }
}
