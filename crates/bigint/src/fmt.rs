//! Formatting and parsing: decimal `Display`/`FromStr`, hex conversions,
//! and `Debug`.

use core::fmt;
use core::str::FromStr;

use crate::uint::{BigUint, ParseBigUintError, ParseErrorKind};

impl BigUint {
    /// Parses a decimal string (ASCII digits only, no sign, no separators).
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc.mul_limb(10).add_limb(digit as u64);
        }
        Ok(acc)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let digit = c.to_digit(16).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc.shl_bits(4).add_limb(digit as u64);
        }
        Ok(acc)
    }

    /// Lowercase hexadecimal string with no leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut out = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            out.push_str(&format!("{top:x}"));
        }
        for limb in iter {
            out.push_str(&format!("{limb:016x}"));
        }
        out
    }

    /// Decimal string.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel 19 decimal digits at a time (largest power of 10 in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = String::new();
        let mut iter = chunks.iter().rev();
        if let Some(top) = iter.next() {
            out.push_str(&top.to_string());
        }
        for c in iter {
            out.push_str(&format!("{c:019}"));
        }
        out
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex is more useful than decimal when debugging limb-level issues.
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_decimal_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "10",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let x = BigUint::from_decimal_str(s).unwrap();
            assert_eq!(x.to_decimal_string(), s);
            assert_eq!(x, s.parse::<BigUint>().unwrap());
        }
    }

    #[test]
    fn decimal_matches_u128() {
        let v = 123456789012345678901234567890u128;
        assert_eq!(BigUint::from(v).to_decimal_string(), v.to_string());
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeefcafebabe",
            "123456789abcdef0123456789abcdef",
        ] {
            let x = BigUint::from_hex(s).unwrap();
            assert_eq!(x.to_hex(), s);
        }
    }

    #[test]
    fn hex_case_insensitive() {
        assert_eq!(
            BigUint::from_hex("DeadBEEF").unwrap(),
            BigUint::from(0xDEADBEEFu64)
        );
    }

    #[test]
    fn parse_errors() {
        assert!(BigUint::from_decimal_str("").is_err());
        assert!(BigUint::from_decimal_str("12a").is_err());
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
        let err = BigUint::from_decimal_str("1_000").unwrap_err();
        assert!(err.to_string().contains("invalid digit"));
    }

    #[test]
    fn display_and_debug() {
        let x = BigUint::from(255u64);
        assert_eq!(format!("{x}"), "255");
        assert_eq!(format!("{x:x}"), "ff");
        assert_eq!(format!("{x:?}"), "BigUint(0xff)");
    }

    #[test]
    fn leading_zeros_in_input_ok() {
        assert_eq!(
            BigUint::from_decimal_str("000123").unwrap().to_u64(),
            Some(123)
        );
        assert_eq!(BigUint::from_hex("000ff").unwrap().to_u64(), Some(255));
    }
}
