//! Barrett reduction: division-free modular reduction for a fixed
//! modulus of *any* parity. Montgomery form (the default fast path)
//! requires an odd modulus; Barrett fills the gap for even moduli, so
//! `modpow` never falls back to per-step long division.

use crate::uint::BigUint;
use crate::LIMB_BITS;

/// Reusable context for reduction modulo a fixed `m > 1`.
///
/// Precomputes `μ = ⌊b^{2k} / m⌋` with `b = 2^64`, `k = limbs(m)`.
/// [`BarrettCtx::reduce`] then reduces any `x < m²` with two
/// multiplications and at most two subtractions.
#[derive(Debug, Clone)]
pub struct BarrettCtx {
    m: BigUint,
    mu: BigUint,
    k: usize,
}

impl BarrettCtx {
    /// Creates a context for `m > 1`.
    ///
    /// # Panics
    /// Panics if `m <= 1`.
    pub fn new(m: BigUint) -> Self {
        assert!(!m.is_zero() && !m.is_one(), "Barrett modulus must be > 1");
        let k = m.limbs().len();
        let mu = &BigUint::one().shl_bits(2 * k * LIMB_BITS) / &m;
        BarrettCtx { m, mu, k }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// `x mod m` for `x < m²` (panics in debug mode otherwise — use
    /// `%` for arbitrary operands).
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        debug_assert!(x < &self.m.square(), "Barrett input must be < m^2");
        // q = ⌊⌊x / b^{k−1}⌋ · μ / b^{k+1}⌋ — an estimate of ⌊x/m⌋ that
        // is low by at most 2.
        let q1 = x.shr_bits((self.k - 1) * LIMB_BITS);
        let q2 = &q1 * &self.mu;
        let q3 = q2.shr_bits((self.k + 1) * LIMB_BITS);
        let mut r = x - &(&q3 * &self.m);
        while r >= self.m {
            r = &r - &self.m;
        }
        r
    }

    /// `(a · b) mod m` for reduced operands.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.m && b < &self.m);
        self.reduce(&(a * b))
    }

    /// `base^exp mod m` by square-and-multiply over Barrett reduction.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let mut b = base % &self.m;
        let mut acc = BigUint::one() % &self.m;
        for i in 0..exp.bit_length() {
            if exp.bit(i) {
                acc = self.mod_mul(&acc, &b);
            }
            if i + 1 < exp.bit_length() {
                b = self.mod_mul(&b.clone(), &b);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn reduce_matches_rem_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let mlen = rng.gen_range(1..6);
            let mut m = BigUint::from_limbs((0..mlen).map(|_| rng.gen()).collect());
            if m.is_zero() || m.is_one() {
                m = m.add_limb(2);
            }
            let ctx = BarrettCtx::new(m.clone());
            let a = rng.gen_biguint_below_helper(&m);
            let b = rng.gen_biguint_below_helper(&m);
            let x = &a * &b;
            assert_eq!(ctx.reduce(&x), &x % &m);
        }
    }

    #[test]
    fn even_modulus_supported() {
        let m = BigUint::from(1_000_000u64); // even
        let ctx = BarrettCtx::new(m.clone());
        let x = BigUint::from(999_999u64).square();
        assert_eq!(ctx.reduce(&x), &x % &m);
    }

    #[test]
    fn modpow_matches_plain() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..30 {
            let mut m = BigUint::from(rng.gen::<u128>());
            if m.is_zero() || m.is_one() {
                m = m.add_limb(2);
            }
            let ctx = BarrettCtx::new(m.clone());
            let base = BigUint::from(rng.gen::<u128>());
            let exp = BigUint::from(rng.gen::<u64>());
            assert_eq!(ctx.modpow(&base, &exp), base.modpow_plain(&exp, &m));
        }
    }

    #[test]
    fn modpow_edges() {
        let ctx = BarrettCtx::new(BigUint::from(100u64));
        assert_eq!(
            ctx.modpow(&BigUint::from(7u64), &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            ctx.modpow(&BigUint::zero(), &BigUint::from(5u64)),
            BigUint::zero()
        );
        assert_eq!(
            ctx.modpow(&BigUint::from(7u64), &BigUint::from(13u64))
                .to_u64(),
            Some({
                let mut acc = 1u64;
                for _ in 0..13 {
                    acc = acc * 7 % 100;
                }
                acc
            })
        );
    }

    #[test]
    #[should_panic(expected = "must be > 1")]
    fn tiny_modulus_rejected() {
        let _ = BarrettCtx::new(BigUint::one());
    }

    // Local helper avoiding a dev-dependency cycle on the random trait.
    trait BelowHelper {
        fn gen_biguint_below_helper(&mut self, bound: &BigUint) -> BigUint;
    }
    impl BelowHelper for ChaCha8Rng {
        fn gen_biguint_below_helper(&mut self, bound: &BigUint) -> BigUint {
            use crate::random::UniformBigUint;
            self.gen_biguint_below(bound)
        }
    }
}
