//! Core [`BigUint`] type: representation, construction, comparison, and the
//! additive/shift/bit-level operations. Multiplication and division live in
//! sibling modules (`mul`, `div`).

use core::cmp::Ordering;
use core::iter::Sum;
use core::ops::{Add, AddAssign, BitAnd, BitOr, BitXor, Shl, Shr, Sub, SubAssign};

use crate::{Limb, Wide, LIMB_BITS};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs
/// (the canonical form of zero is an empty limb vector). All public
/// constructors and operations preserve this normalization invariant.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    pub(crate) limbs: Vec<Limb>,
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    pub(crate) kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl core::fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse an integer from an empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * LIMB_BITS - top.leading_zeros() as usize,
        }
    }

    /// Value of the bit at position `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets the bit at position `i` to `value`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        self.limbs
            .iter()
            .position(|&l| l != 0)
            .map(|i| i * LIMB_BITS + self.limbs[i].trailing_zeros() as usize)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Big-endian byte serialization with no leading zero bytes
    /// (the value zero serializes to an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..skip);
        out
    }

    /// Parses a big-endian byte slice (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    /// Little-endian byte serialization with no trailing zero bytes.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = self.to_bytes_be();
        out.reverse();
        out
    }

    /// Parses a little-endian byte slice (trailing zeros allowed).
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut be = bytes.to_vec();
        be.reverse();
        Self::from_bytes_be(&be)
    }

    /// Drops trailing zero limbs to restore the canonical form.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`, allocating.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: Limb = 0;
        #[allow(clippy::needless_range_loop)] // lockstep over two slices
        for i in 0..long.len() {
            let rhs = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as Limb) + (c2 as Limb);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`; panics on underflow (use [`BigUint::checked_sub`] to
    /// handle the possibly-negative case).
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self - other`, or `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: Limb = 0;
        for i in 0..self.limbs.len() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as Limb) + (b2 as Limb);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `|self - other|`.
    pub fn abs_diff(&self, other: &BigUint) -> BigUint {
        if self >= other {
            self.sub_ref(other)
        } else {
            other.sub_ref(self)
        }
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Logical right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
        }
        BigUint::from_limbs(out)
    }

    /// `self^exp` by binary exponentiation (plain, non-modular).
    pub fn pow(&self, exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Squares the value (dispatches to multiplication).
    pub fn square(&self) -> BigUint {
        self * self
    }

    /// Integer square root `⌊√self⌋` by Newton's method.
    pub fn isqrt(&self) -> BigUint {
        if self.limbs.len() <= 2 {
            let v = self.to_u128().expect("<= 2 limbs");
            return BigUint::from(v.isqrt());
        }
        // Initial guess: 2^(ceil(bits/2)) >= sqrt(self).
        let mut x = BigUint::one().shl_bits(self.bit_length().div_ceil(2));
        loop {
            // x_{k+1} = (x + self/x) / 2; converges from above.
            let next = (&x + &(self / &x)).shr_bits(1);
            if next >= x {
                return x;
            }
            x = next;
        }
    }

    /// `self + small` for a single limb, avoiding an allocation for the rhs.
    pub fn add_limb(&self, small: Limb) -> BigUint {
        let mut out = self.limbs.clone();
        let mut carry = small;
        for l in out.iter_mut() {
            let (s, c) = l.overflowing_add(carry);
            *l = s;
            carry = c as Limb;
            if carry == 0 {
                break;
            }
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - small` for a single limb; panics on underflow.
    pub fn sub_limb(&self, small: Limb) -> BigUint {
        self.sub_ref(&BigUint::from(small))
    }

    /// `self * small` for a single limb.
    pub fn mul_limb(&self, small: Limb) -> BigUint {
        if small == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: Wide = 0;
        for &l in &self.limbs {
            let prod = (l as Wide) * (small as Wide) + carry;
            out.push(prod as Limb);
            carry = prod >> LIMB_BITS;
        }
        if carry != 0 {
            out.push(carry as Limb);
        }
        BigUint::from_limbs(out)
    }
}

macro_rules! impl_from_small {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from_limbs(vec![v as Limb])
            }
        }
    )*};
}
impl_from_small!(u8, u16, u32, u64, usize);

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as Limb, (v >> 64) as Limb])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for BigUint {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

// Operator impls for both owned and borrowed operands. The borrowed forms
// are the primitive ones; owned forms delegate.
impl<'b> Add<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &'b BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}
impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}
impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}
impl Add<BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}
impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}
impl<'b> Sub<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &'b BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}
impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.sub_ref(&rhs)
    }
}
impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}
impl Sub<BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.sub_ref(&rhs)
    }
}
impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self.sub_ref(rhs);
    }
}
impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}
impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt, $keep_longer:expr) => {
        impl<'a, 'b> $trait<&'b BigUint> for &'a BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &'b BigUint) -> BigUint {
                let n = if $keep_longer {
                    self.limbs.len().max(rhs.limbs.len())
                } else {
                    self.limbs.len().min(rhs.limbs.len())
                };
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let a = self.limbs.get(i).copied().unwrap_or(0);
                    let b = rhs.limbs.get(i).copied().unwrap_or(0);
                    out.push(a $op b);
                }
                BigUint::from_limbs(out)
            }
        }
    };
}
impl_bitop!(BitAnd, bitand, &, false);
impl_bitop!(BitOr, bitor, |, true);
impl_bitop!(BitXor, bitxor, ^, true);

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::zero(), |acc, x| &acc + &x)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for BigUint {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_hex())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for BigUint {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        BigUint::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized_empty() {
        assert!(BigUint::zero().limbs().is_empty());
        assert!(BigUint::from_limbs(vec![0, 0, 0]).is_zero());
        assert_eq!(BigUint::zero(), BigUint::from(0u64));
    }

    #[test]
    fn small_roundtrip() {
        for v in [0u64, 1, 2, u64::MAX, 12345] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
        let big = BigUint::from(u128::MAX);
        assert_eq!(big.to_u64(), None);
        assert_eq!(big.to_u128(), Some(u128::MAX));
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        assert_eq!((&a + &b).to_u128(), Some(1u128 << 64));
        let c = BigUint::from(u128::MAX);
        assert_eq!((&c + &BigUint::one()).bit_length(), 129);
    }

    #[test]
    fn sub_underflow_checked() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(7u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u64)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::from(1u64) - BigUint::from(2u64);
    }

    #[test]
    fn abs_diff_symmetric() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(42u64);
        assert_eq!(a.abs_diff(&b), b.abs_diff(&a));
        assert_eq!(a.abs_diff(&b).to_u64(), Some(58));
    }

    #[test]
    fn shifts_roundtrip() {
        let x = BigUint::from(0xDEADBEEFCAFEBABEu64);
        for s in [0usize, 1, 63, 64, 65, 127, 200] {
            assert_eq!(x.shl_bits(s).shr_bits(s), x, "shift {s}");
        }
        assert_eq!(BigUint::one().shl_bits(128).bit_length(), 129);
    }

    #[test]
    fn bit_get_set() {
        let mut x = BigUint::zero();
        x.set_bit(100, true);
        assert!(x.bit(100));
        assert_eq!(x.bit_length(), 101);
        x.set_bit(100, false);
        assert!(x.is_zero());
    }

    #[test]
    fn trailing_zeros_matches() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!(BigUint::one().shl_bits(77).trailing_zeros(), Some(77));
    }

    #[test]
    fn bytes_be_roundtrip() {
        let x = BigUint::from(0x0102030405060708u64);
        assert_eq!(x.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(BigUint::from_bytes_be(&x.to_bytes_be()), x);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1]), BigUint::one());
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn bytes_le_roundtrip() {
        let x = BigUint::from(0xAABBCCDDu64);
        assert_eq!(BigUint::from_bytes_le(&x.to_bytes_le()), x);
    }

    #[test]
    fn ordering_cross_length() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::one().shl_bits(64);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(BigUint::from(2u64).pow(10).to_u64(), Some(1024));
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(BigUint::from(10u64).pow(20).to_u128(), Some(10u128.pow(20)));
    }

    #[test]
    fn isqrt_small_and_large() {
        for v in [0u64, 1, 2, 3, 4, 8, 9, 99, 100, u64::MAX] {
            let got = BigUint::from(v).isqrt().to_u64().unwrap();
            assert_eq!(got, (v as u128).isqrt() as u64, "isqrt({v})");
        }
        // Exact square of a large value.
        let base = BigUint::from(u128::MAX).pow(3);
        let sq = base.square();
        assert_eq!(sq.isqrt(), base);
        // One below the square must floor to base - 1.
        let below = &sq - &BigUint::one();
        assert_eq!(below.isqrt(), &base - &BigUint::one());
    }

    #[test]
    fn isqrt_invariant_random_widths() {
        for bits in [130usize, 200, 511] {
            let x = BigUint::one().shl_bits(bits).sub_limb(12345);
            let r = x.isqrt();
            assert!(r.square() <= x, "r^2 <= x");
            assert!((&r + &BigUint::one()).square() > x, "(r+1)^2 > x");
        }
    }

    #[test]
    fn limb_helpers() {
        let x = BigUint::from(u64::MAX);
        assert_eq!(x.add_limb(1).to_u128(), Some(1u128 << 64));
        assert_eq!(x.mul_limb(2).to_u128(), Some((u64::MAX as u128) * 2));
        assert_eq!(x.sub_limb(5).to_u64(), Some(u64::MAX - 5));
    }

    #[test]
    fn bitops_match_u128() {
        let a = BigUint::from(0xF0F0_1234_5678_9ABCu128 << 30);
        let b = BigUint::from(0x0FF0_AAAA_BBBB_CCCCu128);
        let (ua, ub) = (a.to_u128().unwrap(), b.to_u128().unwrap());
        assert_eq!((&a & &b).to_u128(), Some(ua & ub));
        assert_eq!((&a | &b).to_u128(), Some(ua | ub));
        assert_eq!((&a ^ &b).to_u128(), Some(ua ^ ub));
    }

    #[test]
    fn even_odd() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from(2u64).is_even());
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1u64..=100).map(BigUint::from).sum();
        assert_eq!(total.to_u64(), Some(5050));
    }
}
