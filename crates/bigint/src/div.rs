//! Long division: Knuth's Algorithm D (TAOCP vol. 2, 4.3.1) with a
//! single-limb fast path. Division is the hot inner operation of plain
//! (non-Montgomery) modular reduction, used for even moduli and for
//! the Damgård–Jurik decryption's `L(u) = (u - 1) / n` step.

use core::ops::{Div, Rem};

use crate::uint::BigUint;
use crate::{Limb, Wide, LIMB_BITS};

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Computes `(self / d, self % d)` for a single non-zero limb `d`.
    pub fn div_rem_limb(&self, d: Limb) -> (BigUint, Limb) {
        assert_ne!(d, 0, "division by zero limb");
        let mut q = vec![0 as Limb; self.limbs.len()];
        let mut rem: Wide = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as Wide;
            q[i] = (cur / d as Wide) as Limb;
            rem = cur % d as Wide;
        }
        (BigUint::from_limbs(q), rem as Limb)
    }

    /// `self % divisor` (allocates only the remainder).
    pub fn rem_ref(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).1
    }

    /// Knuth Algorithm D. Requires `divisor.limbs.len() >= 2` and
    /// `self >= divisor`.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl_bits(shift);
        let u_norm = self.shl_bits(shift);
        // u gets an extra high limb so u has exactly m + n + 1 limbs.
        let mut u: Vec<Limb> = u_norm.limbs.clone();
        u.resize(m + n + 1, 0);
        let v = &v.limbs;
        debug_assert_eq!(v.len(), n);

        let mut q = vec![0 as Limb; m + 1];
        let v_top = v[n - 1] as Wide;
        let v_second = v[n - 2] as Wide;

        // D2–D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two limbs of the current window
            // against the top limb of v, then refine with the third limb.
            let numer = ((u[j + n] as Wide) << LIMB_BITS) | u[j + n - 1] as Wide;
            let mut qhat = numer / v_top;
            let mut rhat = numer % v_top;
            if qhat >> LIMB_BITS != 0 {
                qhat = ((1 as Wide) << LIMB_BITS) - 1;
                rhat = numer - qhat * v_top;
            }
            while rhat >> LIMB_BITS == 0
                && qhat * v_second > ((rhat << LIMB_BITS) | u[j + n - 2] as Wide)
            {
                qhat -= 1;
                rhat += v_top;
            }

            // D4: multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow: Wide = 0;
            let mut carry: Wide = 0;
            for i in 0..n {
                let p = qhat * v[i] as Wide + carry;
                carry = p >> LIMB_BITS;
                let sub = (u[j + i] as Wide)
                    .wrapping_sub(p & (Limb::MAX as Wide))
                    .wrapping_sub(borrow);
                u[j + i] = sub as Limb;
                // The subtraction borrowed iff the wrapped result's high part
                // is non-zero (interpreting as two's-complement of 128 bits).
                borrow = (sub >> LIMB_BITS) & 1;
            }
            let sub = (u[j + n] as Wide).wrapping_sub(carry).wrapping_sub(borrow);
            u[j + n] = sub as Limb;
            let negative = (sub >> LIMB_BITS) & 1 == 1;

            q[j] = qhat as Limb;

            // D6: add back if we overshot (probability ~2/2^64).
            if negative {
                q[j] -= 1;
                let mut carry: Wide = 0;
                for i in 0..n {
                    let t = u[j + i] as Wide + v[i] as Wide + carry;
                    u[j + i] = t as Limb;
                    carry = t >> LIMB_BITS;
                }
                u[j + n] = u[j + n].wrapping_add(carry as Limb);
            }
        }

        // D8: denormalize the remainder.
        let rem = BigUint::from_limbs(u[..n].to_vec()).shr_bits(shift);
        (BigUint::from_limbs(q), rem)
    }
}

impl<'b> Div<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &'b BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}
impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}
impl<'b> Rem<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &'b BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}
impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}
impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}
impl Rem<BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}
impl Div<&BigUint> for BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}
impl Div<BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn div_small_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (0, 1),
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (1 << 100, (1 << 50) + 1),
            (999999999999999999, 999999999999999998),
        ];
        for (a, b) in cases {
            let (q, r) = BigUint::from(a).div_rem(&BigUint::from(b));
            assert_eq!(q.to_u128(), Some(a / b), "{a}/{b}");
            assert_eq!(r.to_u128(), Some(a % b), "{a}%{b}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn div_smaller_than_divisor() {
        let (q, r) = BigUint::from(5u64).div_rem(&BigUint::from(u128::MAX));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn div_rem_limb_fast_path() {
        let x = BigUint::from(u128::MAX);
        let (q, r) = x.div_rem_limb(10);
        assert_eq!(q.to_u128(), Some(u128::MAX / 10));
        assert_eq!(r, (u128::MAX % 10) as Limb);
    }

    #[test]
    fn knuth_reconstruction_random() {
        // Invariant: a == q*b + r with r < b, over many random sizes.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            let alen = rng.gen_range(1..20);
            let blen = rng.gen_range(2..=alen.max(2));
            let a = BigUint::from_limbs((0..alen).map(|_| rng.gen()).collect());
            let mut b = BigUint::from_limbs((0..blen).map(|_| rng.gen()).collect());
            if b.is_zero() {
                b = BigUint::one();
            }
            let (q, r) = a.div_rem(&b);
            assert!(r < b, "remainder must be < divisor");
            assert_eq!(&(&q * &b) + &r, a, "a = q*b + r");
        }
    }

    #[test]
    fn knuth_addback_branch() {
        // Crafted case that historically triggers the D6 add-back:
        // u = (B^4 - 1)*B^4, v = B^4 - 1 where B = 2^64 (via all-ones limbs).
        let u = BigUint::from_limbs(vec![0, 0, 0, 0, Limb::MAX, Limb::MAX, Limb::MAX, Limb::MAX]);
        let v = BigUint::from_limbs(vec![Limb::MAX, Limb::MAX, Limb::MAX, Limb::MAX]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from(u128::MAX).pow(3);
        let q0 = BigUint::from(987654321u64);
        let a = &b * &q0;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q0);
        assert!(r.is_zero());
    }

    #[test]
    fn operator_forms() {
        let a = BigUint::from(1000u64);
        let b = BigUint::from(7u64);
        assert_eq!((&a / &b).to_u64(), Some(142));
        assert_eq!((&a % &b).to_u64(), Some(6));
        assert_eq!((a.clone() / b.clone()).to_u64(), Some(142));
        assert_eq!((a % b).to_u64(), Some(6));
    }
}
