//! An R-tree over POIs, bulk-loaded with the Sort-Tile-Recursive (STR)
//! algorithm, supporting best-first kNN and the MBM group-kNN of
//! Papadias et al. — the plaintext `kGNN` black box of Algorithm 2 line 3.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::aggregate::Aggregate;
use crate::poi::Poi;
use crate::point::Point;
use crate::rect::Rect;

/// Maximum entries per node (fanout).
const NODE_CAPACITY: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    /// Leaf: a run of POIs.
    Leaf { mbr: Rect, pois: Vec<Poi> },
    /// Internal: child node indexes with their MBRs.
    Internal { mbr: Rect, children: Vec<usize> },
}

impl Node {
    fn mbr(&self) -> &Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => mbr,
        }
    }
}

/// A static (bulk-loaded) R-tree.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
}

/// An f64 priority that is `Ord` (total order via `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Heap entry for best-first traversal: min-heap by (cost, tie-break id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeapItem {
    Node { idx: usize },
    Poi { poi_idx: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    cost: OrdF64,
    tie: u32,
    item: HeapItem,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the minimum cost first;
        // nodes sort before POIs at equal cost so bounds are refined eagerly.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

impl RTree {
    /// Bulk-loads an R-tree from POIs using Sort-Tile-Recursive packing.
    pub fn bulk_load(mut pois: Vec<Poi>) -> Self {
        let len = pois.len();
        if pois.is_empty() {
            return RTree {
                nodes: Vec::new(),
                root: None,
                len: 0,
            };
        }
        let mut nodes = Vec::new();

        // STR leaf packing: sort by x, cut into vertical slabs of
        // ~sqrt(#leaves) leaves each, sort each slab by y, pack runs.
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slab_size = len.div_ceil(slab_count.max(1));
        pois.sort_by(|a, b| a.location.x.total_cmp(&b.location.x));

        let mut leaf_ids = Vec::with_capacity(leaf_count);
        for slab in pois.chunks_mut(slab_size.max(1)) {
            slab.sort_by(|a, b| a.location.y.total_cmp(&b.location.y));
            for run in slab.chunks(NODE_CAPACITY) {
                let mbr = Rect::bounding(&run.iter().map(|p| p.location).collect::<Vec<_>>());
                nodes.push(Node::Leaf {
                    mbr,
                    pois: run.to_vec(),
                });
                leaf_ids.push(nodes.len() - 1);
            }
        }

        // Pack levels upward until a single root remains.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let group_count = level.len().div_ceil(NODE_CAPACITY);
            let slab_count = (group_count as f64).sqrt().ceil() as usize;
            let slab_size = level.len().div_ceil(slab_count.max(1));
            level.sort_by(|&a, &b| {
                nodes[a]
                    .mbr()
                    .center()
                    .x
                    .total_cmp(&nodes[b].mbr().center().x)
            });
            let mut next = Vec::with_capacity(group_count);
            let chunks: Vec<Vec<usize>> =
                level.chunks(slab_size.max(1)).map(|c| c.to_vec()).collect();
            for mut slab in chunks {
                slab.sort_by(|&a, &b| {
                    nodes[a]
                        .mbr()
                        .center()
                        .y
                        .total_cmp(&nodes[b].mbr().center().y)
                });
                for run in slab.chunks(NODE_CAPACITY) {
                    let mbr = run
                        .iter()
                        .map(|&i| *nodes[i].mbr())
                        .reduce(|a, b| a.union(&b))
                        .expect("non-empty run");
                    nodes.push(Node::Internal {
                        mbr,
                        children: run.to_vec(),
                    });
                    next.push(nodes.len() - 1);
                }
            }
            level = next;
        }

        let root = level.first().copied();
        RTree { nodes, root, len }
    }

    /// Number of indexed POIs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of the whole dataset (`None` when empty).
    pub fn mbr(&self) -> Option<Rect> {
        self.root.map(|r| *self.nodes[r].mbr())
    }

    /// Classic k-nearest-neighbor query by best-first traversal.
    /// Returns at most `k` POIs in ascending `(distance, id)` order.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<Poi> {
        let q = std::slice::from_ref(query);
        self.group_knn(q, k, Aggregate::Sum)
    }

    /// MBM group-kNN (Definition 2.1): the `k` POIs minimizing
    /// `F(p, queries)`, ascending, ties broken by POI id.
    ///
    /// Best-first traversal where an internal node's key is
    /// [`Aggregate::lower_bound`] of its MBR — a sound lower bound for
    /// monotone `F`, so the first `k` POIs popped are exactly the answer.
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn group_knn(&self, queries: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        assert!(!queries.is_empty(), "group_knn with no query locations");
        let mut result = Vec::with_capacity(k.min(self.len));
        if k == 0 {
            return result;
        }
        let Some(root) = self.root else { return result };

        // Flattened POI store for heap entries: (cost computed lazily when
        // a leaf is expanded).
        let mut poi_buf: Vec<Poi> = Vec::new();
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: OrdF64(agg.lower_bound(self.nodes[root].mbr(), queries)),
            tie: 0,
            item: HeapItem::Node { idx: root },
        });

        while let Some(entry) = heap.pop() {
            match entry.item {
                HeapItem::Poi { poi_idx } => {
                    result.push(poi_buf[poi_idx as usize]);
                    if result.len() == k {
                        break;
                    }
                }
                HeapItem::Node { idx } => match &self.nodes[idx] {
                    Node::Internal { children, .. } => {
                        for &c in children {
                            heap.push(HeapEntry {
                                cost: OrdF64(agg.lower_bound(self.nodes[c].mbr(), queries)),
                                tie: 0,
                                item: HeapItem::Node { idx: c },
                            });
                        }
                    }
                    Node::Leaf { pois, .. } => {
                        for poi in pois {
                            let cost = agg.eval(&poi.location, queries);
                            poi_buf.push(*poi);
                            heap.push(HeapEntry {
                                cost: OrdF64(cost),
                                tie: poi.id,
                                item: HeapItem::Poi {
                                    poi_idx: (poi_buf.len() - 1) as u32,
                                },
                            });
                        }
                    }
                },
            }
        }
        result
    }

    /// All POIs whose location falls inside `rect`, in id order.
    pub fn range(&self, rect: &Rect) -> Vec<Poi> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                Node::Internal { mbr, children } => {
                    if mbr.intersects(rect) {
                        stack.extend(children.iter().copied());
                    }
                }
                Node::Leaf { mbr, pois } => {
                    if mbr.intersects(rect) {
                        out.extend(pois.iter().filter(|p| rect.contains(&p.location)));
                    }
                }
            }
        }
        out.sort_by_key(|p| p.id);
        out
    }

    /// Iterates over all indexed POIs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Poi> {
        self.nodes.iter().flat_map(|n| match n {
            Node::Leaf { pois, .. } => pois.iter(),
            Node::Internal { .. } => [].iter(),
        })
    }

    /// Streaming best-first traversal: yields POIs in ascending
    /// `(F(p, queries), id)` order, lazily — callers that stop early
    /// (e.g. "expand until the next POI is unsafe") never pay for the
    /// full k-set.
    pub fn group_nearest_iter<'a>(
        &'a self,
        queries: &'a [Point],
        agg: Aggregate,
    ) -> GroupNearestIter<'a> {
        assert!(!queries.is_empty(), "iterator with no query locations");
        let mut heap = BinaryHeap::new();
        if let Some(root) = self.root {
            heap.push(HeapEntry {
                cost: OrdF64(agg.lower_bound(self.nodes[root].mbr(), queries)),
                tie: 0,
                item: HeapItem::Node { idx: root },
            });
        }
        GroupNearestIter {
            tree: self,
            queries,
            agg,
            heap,
            poi_buf: Vec::new(),
        }
    }

    /// Tree height (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(mut idx) = self.root else { return 0 };
        let mut h = 1;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }
}

/// Lazy best-first group-nearest iterator (see
/// [`RTree::group_nearest_iter`]). Yields `(poi, aggregate_cost)`.
pub struct GroupNearestIter<'a> {
    tree: &'a RTree,
    queries: &'a [Point],
    agg: Aggregate,
    heap: BinaryHeap<HeapEntry>,
    poi_buf: Vec<Poi>,
}

impl Iterator for GroupNearestIter<'_> {
    type Item = (Poi, f64);

    fn next(&mut self) -> Option<(Poi, f64)> {
        while let Some(entry) = self.heap.pop() {
            match entry.item {
                HeapItem::Poi { poi_idx } => {
                    return Some((self.poi_buf[poi_idx as usize], entry.cost.0));
                }
                HeapItem::Node { idx } => match &self.tree.nodes[idx] {
                    Node::Internal { children, .. } => {
                        for &c in children {
                            self.heap.push(HeapEntry {
                                cost: OrdF64(
                                    self.agg.lower_bound(self.tree.nodes[c].mbr(), self.queries),
                                ),
                                tie: 0,
                                item: HeapItem::Node { idx: c },
                            });
                        }
                    }
                    Node::Leaf { pois, .. } => {
                        for poi in pois {
                            let cost = self.agg.eval(&poi.location, self.queries);
                            self.poi_buf.push(*poi);
                            self.heap.push(HeapEntry {
                                cost: OrdF64(cost),
                                tie: poi.id,
                                item: HeapItem::Poi {
                                    poi_idx: (self.poi_buf.len() - 1) as u32,
                                },
                            });
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::group_knn_brute_force;
    use crate::knn::knn_brute_force;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_pois(n: usize, seed: u64) -> Vec<Poi> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| Poi::new(i as u32, Point::new(rng.gen(), rng.gen())))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.knn(&Point::ORIGIN, 3).is_empty());
        assert!(t.mbr().is_none());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn single_poi() {
        let poi = Poi::new(1, Point::new(0.5, 0.5));
        let t = RTree::bulk_load(vec![poi]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.knn(&Point::ORIGIN, 5), vec![poi]);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pois = random_pois(500, 1);
        let t = RTree::bulk_load(pois.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let q = Point::new(rng.gen(), rng.gen());
            for k in [1usize, 3, 10, 100] {
                let got = t.knn(&q, k);
                let want = knn_brute_force(&pois, &q, k);
                assert_eq!(
                    got.iter().map(|p| p.id).collect::<Vec<_>>(),
                    want.iter().map(|p| p.id).collect::<Vec<_>>(),
                    "k={k} q=({},{})",
                    q.x,
                    q.y
                );
            }
        }
    }

    #[test]
    fn group_knn_matches_brute_force_all_aggregates() {
        let pois = random_pois(300, 3);
        let t = RTree::bulk_load(pois.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for agg in Aggregate::ALL {
            for _ in 0..10 {
                let n = rng.gen_range(1..6);
                let queries: Vec<Point> =
                    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
                let got = t.group_knn(&queries, 8, agg);
                let want = group_knn_brute_force(&pois, &queries, 8, agg);
                assert_eq!(
                    got.iter().map(|p| p.id).collect::<Vec<_>>(),
                    want.iter().map(|p| p.id).collect::<Vec<_>>(),
                    "{agg}"
                );
            }
        }
    }

    #[test]
    fn knn_results_sorted_ascending() {
        let pois = random_pois(200, 5);
        let t = RTree::bulk_load(pois);
        let q = Point::new(0.5, 0.5);
        let res = t.knn(&q, 50);
        for w in res.windows(2) {
            assert!(w[0].location.dist(&q) <= w[1].location.dist(&q) + 1e-12);
        }
    }

    #[test]
    fn k_larger_than_dataset() {
        let pois = random_pois(10, 6);
        let t = RTree::bulk_load(pois.clone());
        let res = t.knn(&Point::ORIGIN, 100);
        assert_eq!(res.len(), 10);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = RTree::bulk_load(random_pois(10, 7));
        assert!(t.knn(&Point::ORIGIN, 0).is_empty());
    }

    #[test]
    fn duplicate_locations_tie_broken_by_id() {
        let p = Point::new(0.5, 0.5);
        let pois = vec![Poi::new(9, p), Poi::new(3, p), Poi::new(7, p)];
        let t = RTree::bulk_load(pois);
        let ids: Vec<u32> = t.knn(&p, 3).iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn range_query_matches_filter() {
        let pois = random_pois(400, 8);
        let t = RTree::bulk_load(pois.clone());
        let rect = Rect::new(0.2, 0.3, 0.6, 0.7);
        let got: Vec<u32> = t.range(&rect).iter().map(|p| p.id).collect();
        let mut want: Vec<u32> = pois
            .iter()
            .filter(|p| rect.contains(&p.location))
            .map(|p| p.id)
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "rect should catch some of 400 points");
    }

    #[test]
    fn iter_covers_everything() {
        let pois = random_pois(150, 9);
        let t = RTree::bulk_load(pois.clone());
        let mut ids: Vec<u32> = t.iter().map(|p| p.id).collect();
        ids.sort();
        assert_eq!(ids, (0..150).collect::<Vec<u32>>());
    }

    #[test]
    fn multi_level_tree_built_for_large_input() {
        let t = RTree::bulk_load(random_pois(10_000, 10));
        assert!(t.height() >= 2, "10k POIs must not fit in one leaf");
        assert_eq!(t.len(), 10_000);
        // Sanity: large-tree kNN still correct at the fringe.
        let res = t.knn(&Point::new(-1.0, -1.0), 5);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn nearest_iter_matches_group_knn() {
        let pois = random_pois(300, 20);
        let t = RTree::bulk_load(pois.clone());
        let queries = vec![Point::new(0.4, 0.6), Point::new(0.7, 0.2)];
        for agg in Aggregate::ALL {
            let from_iter: Vec<u32> = t
                .group_nearest_iter(&queries, agg)
                .take(25)
                .map(|(p, _)| p.id)
                .collect();
            let from_knn: Vec<u32> = t
                .group_knn(&queries, 25, agg)
                .iter()
                .map(|p| p.id)
                .collect();
            assert_eq!(from_iter, from_knn, "{agg}");
        }
    }

    #[test]
    fn nearest_iter_costs_nondecreasing_and_exhaustive() {
        let pois = random_pois(120, 21);
        let t = RTree::bulk_load(pois);
        let queries = vec![Point::new(0.5, 0.5)];
        let all: Vec<(Poi, f64)> = t.group_nearest_iter(&queries, Aggregate::Sum).collect();
        assert_eq!(all.len(), 120, "iterator must drain the whole tree");
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    #[test]
    fn nearest_iter_empty_tree() {
        let t = RTree::bulk_load(vec![]);
        assert_eq!(
            t.group_nearest_iter(&[Point::ORIGIN], Aggregate::Sum)
                .count(),
            0
        );
    }

    #[test]
    fn group_knn_with_query_outside_space() {
        let pois = random_pois(100, 11);
        let t = RTree::bulk_load(pois.clone());
        let queries = vec![Point::new(5.0, 5.0), Point::new(-3.0, 0.5)];
        let got = t.group_knn(&queries, 4, Aggregate::Max);
        let want = group_knn_brute_force(&pois, &queries, 4, Aggregate::Max);
        assert_eq!(
            got.iter().map(|p| p.id).collect::<Vec<_>>(),
            want.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }
}
