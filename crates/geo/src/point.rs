//! 2-D points in the normalized location space.

use serde::{Deserialize, Serialize};

/// A location in the (normalized, unit-square) data space.
///
/// The paper normalizes California into a square space and represents both
/// POIs and user locations as points in it; Euclidean distance is the
/// `dis` function of Definition 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper for comparisons).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Centroid of a non-empty set of points.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn centroid(points: &[Point]) -> Point {
        assert!(!points.is_empty(), "centroid of an empty point set");
        let n = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }

    /// Quantizes a coordinate in `\[0, 1\]` to a `u32` fixed-point value.
    /// Used when POI coordinates are encoded into answer records
    /// ("the coordinates of POIs (8 bytes per POI) are returned", §8.1).
    pub fn quantize_coord(c: f64) -> u32 {
        (c.clamp(0.0, 1.0) * u32::MAX as f64).round() as u32
    }

    /// Inverse of [`Point::quantize_coord`].
    pub fn dequantize_coord(q: u32) -> f64 {
        q as f64 / u32::MAX as f64
    }

    /// Quantizes both coordinates.
    pub fn quantize(&self) -> (u32, u32) {
        (Self::quantize_coord(self.x), Self::quantize_coord(self.y))
    }

    /// Rebuilds a point from quantized coordinates.
    pub fn dequantize(q: (u32, u32)) -> Point {
        Point::new(Self::dequantize_coord(q.0), Self::dequantize_coord(q.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&a), 0.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let c = Point::centroid(&pts);
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_empty_panics() {
        let _ = Point::centroid(&[]);
    }

    #[test]
    fn quantization_roundtrip_error_bound() {
        for c in [0.0, 1.0, 0.5, 0.123456789, 0.999999] {
            let q = Point::quantize_coord(c);
            assert!((Point::dequantize_coord(q) - c).abs() < 1.0 / u32::MAX as f64);
        }
    }

    #[test]
    fn quantization_clamps() {
        assert_eq!(Point::quantize_coord(-0.5), 0);
        assert_eq!(Point::quantize_coord(1.5), u32::MAX);
    }

    #[test]
    fn point_quantize_roundtrip() {
        let p = Point::new(0.25, 0.75);
        let back = Point::dequantize(p.quantize());
        assert!(back.dist(&p) < 1e-8);
    }

    #[test]
    fn triangle_inequality_sample() {
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.8, 0.9);
        let c = Point::new(0.4, 0.1);
        assert!(a.dist(&b) <= a.dist(&c) + c.dist(&b) + 1e-12);
    }
}
