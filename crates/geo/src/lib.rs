//! Spatial substrate for the PPGNN reproduction.
//!
//! The paper treats "the query answering (i.e., kGNN) as a black box" and
//! uses the classic Minimum Bounding Method (MBM, Papadias et al. ICDE'04)
//! as that box. This crate builds the whole box from scratch:
//!
//! * [`Point`] / [`Rect`] geometry over the normalized unit square the
//!   paper's experiments use;
//! * aggregate cost functions `F ∈ {sum, max, min}` ([`Aggregate`],
//!   Eqn 1 of the paper);
//! * an STR-bulk-loaded R-tree ([`RTree`]) with best-first kNN;
//! * the MBM group-kNN ([`RTree::group_knn`]) whose priority key is the
//!   aggregate of per-query-point MINDISTs — a valid lower bound for any
//!   monotone `F`;
//! * brute-force oracles ([`knn_brute_force`], [`group_knn_brute_force`])
//!   used by tests and by small baselines;
//! * a uniform [`Grid`] index used by the APNN baseline's pre-computation.
//!
//! Ties in distance are broken by POI id everywhere, so the index-based
//! algorithms and the oracles agree exactly.

mod aggregate;
mod dynamic;
mod gnn;
mod grid;
mod knn;
mod poi;
mod point;
mod rect;
pub mod roadnet;
mod rtree;

pub use aggregate::Aggregate;
pub use dynamic::{DynamicRTree, PoiOp};
pub use gnn::group_knn_brute_force;
pub use grid::Grid;
pub use knn::knn_brute_force;
pub use poi::{Poi, PoiId};
pub use point::Point;
pub use rect::Rect;
pub use roadnet::{NodeId, RoadNetwork};
pub use rtree::{GroupNearestIter, RTree};
