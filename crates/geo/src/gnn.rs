//! Brute-force group-kNN oracle (Definition 2.1 evaluated literally).

use crate::aggregate::Aggregate;
use crate::poi::Poi;
use crate::point::Point;

/// The `k` POIs minimizing `F(p, queries)`, ascending by `(F, id)`.
///
/// # Panics
/// Panics if `queries` is empty.
pub fn group_knn_brute_force(
    pois: &[Poi],
    queries: &[Point],
    k: usize,
    agg: Aggregate,
) -> Vec<Poi> {
    assert!(!queries.is_empty(), "group kNN with no query locations");
    let mut scored: Vec<(f64, Poi)> = pois
        .iter()
        .map(|p| (agg.eval(&p.location, queries), *p))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.id.cmp(&b.1.id)));
    scored.into_iter().take(k).map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_semantics() {
        // Three users; p1 minimizes the total distance, p2 is second.
        let users = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ];
        let pois = vec![
            Poi::new(1, Point::new(0.5, 0.3)),  // central: best for sum
            Poi::new(2, Point::new(0.5, 0.55)), // near-central
            Poi::new(3, Point::new(0.0, 1.0)),  // corner: bad for sum
        ];
        let top2 = group_knn_brute_force(&pois, &users, 2, Aggregate::Sum);
        assert_eq!(top2.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn min_aggregate_prefers_any_close_poi() {
        let users = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let pois = vec![
            Poi::new(1, Point::new(0.5, 0.5)),   // middling for min
            Poi::new(2, Point::new(0.01, 0.01)), // hugging user 1: best min
        ];
        let top = group_knn_brute_force(&pois, &users, 1, Aggregate::Min);
        assert_eq!(top[0].id, 2);
    }

    #[test]
    fn max_aggregate_prefers_balanced_poi() {
        let users = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let pois = vec![
            Poi::new(1, Point::new(0.5, 0.5)),   // balanced: best max
            Poi::new(2, Point::new(0.01, 0.01)), // far from user 2
        ];
        let top = group_knn_brute_force(&pois, &users, 1, Aggregate::Max);
        assert_eq!(top[0].id, 1);
    }

    #[test]
    fn single_user_reduces_to_knn() {
        let q = vec![Point::new(0.2, 0.2)];
        let pois = vec![
            Poi::new(1, Point::new(0.9, 0.9)),
            Poi::new(2, Point::new(0.25, 0.2)),
        ];
        for agg in Aggregate::ALL {
            let top = group_knn_brute_force(&pois, &q, 1, agg);
            assert_eq!(top[0].id, 2, "{agg}");
        }
    }

    #[test]
    fn answers_sorted_by_aggregate() {
        let users = vec![Point::new(0.3, 0.3), Point::new(0.7, 0.7)];
        let pois: Vec<Poi> = (0..20)
            .map(|i| Poi::new(i, Point::new(i as f64 / 20.0, 0.5)))
            .collect();
        let res = group_knn_brute_force(&pois, &users, 20, Aggregate::Sum);
        for w in res.windows(2) {
            assert!(
                Aggregate::Sum.eval(&w[0].location, &users)
                    <= Aggregate::Sum.eval(&w[1].location, &users) + 1e-12
            );
        }
    }
}
