//! Axis-aligned rectangles: MBRs for the R-tree, cloak regions for the
//! IPPF baseline, and the data-space boundary for sampling.

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle; swaps coordinates if given in the wrong order.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The unit square — the paper's normalized location space.
    pub const UNIT: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 1.0,
        max_y: 1.0,
    };

    /// A degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// Tight bounding rectangle of a non-empty point set.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn bounding(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bounding box of an empty point set");
        let mut r = Rect::from_point(points[0]);
        for p in &points[1..] {
            r = r.expanded_to(*p);
        }
        r
    }

    /// Smallest rectangle containing both `self` and `p`.
    pub fn expanded_to(&self, p: Point) -> Rect {
        Rect {
            min_x: self.min_x.min(p.x),
            min_y: self.min_y.min(p.y),
            max_x: self.max_x.max(p.x),
            max_y: self.max_y.max(p.y),
        }
    }

    /// Smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// `true` iff the point lies inside (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` iff the rectangles overlap (boundary touching counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// MINDIST: the minimum Euclidean distance from `p` to any point of
    /// the rectangle (0 if `p` is inside). The R-tree pruning bound.
    pub fn min_dist(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// MAXDIST: the maximum Euclidean distance from `p` to any point of
    /// the rectangle (attained at a corner).
    pub fn max_dist(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_swaps_misordered_coords() {
        let r = Rect::new(0.8, 0.9, 0.1, 0.2);
        assert_eq!(r, Rect::new(0.1, 0.2, 0.8, 0.9));
    }

    #[test]
    fn area_width_height() {
        let r = Rect::new(0.0, 0.0, 0.5, 0.25);
        assert_eq!(r.width(), 0.5);
        assert_eq!(r.height(), 0.25);
        assert_eq!(r.area(), 0.125);
        assert_eq!(Rect::UNIT.area(), 1.0);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let r = Rect::UNIT;
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let r = Rect::new(0.2, 0.2, 0.8, 0.8);
        assert_eq!(r.min_dist(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.min_dist(&Point::new(0.2, 0.8)), 0.0);
    }

    #[test]
    fn min_dist_outside_axis_and_corner() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        // Directly left of the rect.
        assert!((r.min_dist(&Point::new(-0.3, 0.5)) - 0.3).abs() < 1e-12);
        // Diagonal from the corner.
        let d = r.min_dist(&Point::new(-3.0, -4.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_dist_is_corner_distance() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let d = r.max_dist(&Point::new(0.0, 0.0));
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_le_max_dist_everywhere() {
        let r = Rect::new(0.3, 0.1, 0.7, 0.9);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.5),
            Point::new(1.0, 0.2),
            Point::new(-1.0, 2.0),
        ] {
            assert!(r.min_dist(&p) <= r.max_dist(&p) + 1e-12);
        }
    }

    #[test]
    fn union_and_expand() {
        let a = Rect::new(0.0, 0.0, 0.2, 0.2);
        let b = Rect::new(0.5, 0.5, 0.9, 0.6);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 0.9, 0.6));
        let e = a.expanded_to(Point::new(0.4, -0.1));
        assert_eq!(e, Rect::new(0.0, -0.1, 0.4, 0.2));
    }

    #[test]
    fn intersects_cases() {
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        assert!(a.intersects(&Rect::new(0.4, 0.4, 0.8, 0.8)));
        assert!(a.intersects(&Rect::new(0.5, 0.0, 1.0, 0.5))); // touching edge
        assert!(!a.intersects(&Rect::new(0.6, 0.6, 0.9, 0.9)));
    }

    #[test]
    fn bounding_covers_all() {
        let pts = [
            Point::new(0.3, 0.9),
            Point::new(0.1, 0.2),
            Point::new(0.7, 0.5),
        ];
        let bb = Rect::bounding(&pts);
        assert!(pts.iter().all(|p| bb.contains(p)));
        assert_eq!(bb, Rect::new(0.1, 0.2, 0.7, 0.9));
    }
}
