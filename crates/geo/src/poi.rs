//! Points of interest — the records of the LSP's database `𝔻`.

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// Identifier of a POI within the LSP database.
pub type PoiId = u32;

/// A point of interest: an id plus a location. The paper's POIs also carry
/// names; the id stands in for any associated payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    pub id: PoiId,
    pub location: Point,
}

impl Poi {
    /// Creates a POI.
    pub const fn new(id: PoiId, location: Point) -> Self {
        Poi { id, location }
    }

    /// Encodes this POI's quantized coordinates into one 8-byte answer
    /// record, matching §8.1 ("the coordinates of POIs (8 bytes per POI)
    /// are returned as the query answer").
    pub fn encode_record(&self) -> u64 {
        let (qx, qy) = self.location.quantize();
        ((qx as u64) << 32) | qy as u64
    }

    /// Decodes an 8-byte answer record back into a location.
    pub fn decode_record(rec: u64) -> Point {
        Point::dequantize(((rec >> 32) as u32, rec as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_within_quantization_error() {
        let poi = Poi::new(7, Point::new(0.123, 0.987));
        let back = Poi::decode_record(poi.encode_record());
        assert!(back.dist(&poi.location) < 1e-8);
    }

    #[test]
    fn record_corner_cases() {
        for p in [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ] {
            let poi = Poi::new(0, p);
            let back = Poi::decode_record(poi.encode_record());
            assert!(back.dist(&p) < 1e-9);
        }
    }

    #[test]
    fn distinct_points_distinct_records() {
        let a = Poi::new(0, Point::new(0.25, 0.5)).encode_record();
        let b = Poi::new(0, Point::new(0.5, 0.25)).encode_record();
        assert_ne!(a, b);
    }
}
