//! Aggregate cost functions `F` over the distances from a candidate POI to
//! every query location (Eqn 1 of the paper). `sum`, `max` and `min` are
//! the paper's examples; all are monotonically increasing in each argument,
//! which is what makes the MBM lower bound sound.

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::rect::Rect;

/// A monotone aggregate over per-user distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Aggregate {
    /// Total distance — the "meeting place" semantics (default in §8).
    #[default]
    Sum,
    /// Maximum distance — earliest time until *all* users can arrive.
    Max,
    /// Minimum distance — earliest time until *any* user can arrive.
    Min,
}

impl Aggregate {
    /// `F(p, C) = F(dis(p, l₁), …, dis(p, l_n))`.
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn eval(&self, p: &Point, queries: &[Point]) -> f64 {
        assert!(!queries.is_empty(), "aggregate over an empty query set");
        let dists = queries.iter().map(|q| p.dist(q));
        match self {
            Aggregate::Sum => dists.sum(),
            Aggregate::Max => dists.fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Min => dists.fold(f64::INFINITY, f64::min),
        }
    }

    /// Lower bound of `F(p, C)` over all `p` inside `rect` — the MBM
    /// pruning key: aggregate the per-query MINDISTs. Sound because `F`
    /// is monotone in each distance.
    pub fn lower_bound(&self, rect: &Rect, queries: &[Point]) -> f64 {
        assert!(!queries.is_empty(), "aggregate over an empty query set");
        let dists = queries.iter().map(|q| rect.min_dist(q));
        match self {
            Aggregate::Sum => dists.sum(),
            Aggregate::Max => dists.fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Min => dists.fold(f64::INFINITY, f64::min),
        }
    }

    /// All supported aggregates (for parameterized tests/benches).
    pub const ALL: [Aggregate; 3] = [Aggregate::Sum, Aggregate::Max, Aggregate::Min];
}

impl core::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Aggregate::Sum => write!(f, "sum"),
            Aggregate::Max => write!(f, "max"),
            Aggregate::Min => write!(f, "min"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries() -> Vec<Point> {
        vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]
    }

    #[test]
    fn eval_sum_max_min() {
        let p = Point::new(0.0, 0.0);
        let q = queries();
        assert_eq!(Aggregate::Sum.eval(&p, &q), 1.0);
        assert_eq!(Aggregate::Max.eval(&p, &q), 1.0);
        assert_eq!(Aggregate::Min.eval(&p, &q), 0.0);
    }

    #[test]
    fn single_query_point_all_equal() {
        let p = Point::new(0.3, 0.4);
        let q = vec![Point::ORIGIN];
        for agg in Aggregate::ALL {
            assert_eq!(agg.eval(&p, &q), 0.5, "{agg}");
        }
    }

    #[test]
    #[should_panic(expected = "empty query set")]
    fn empty_queries_panics() {
        let _ = Aggregate::Sum.eval(&Point::ORIGIN, &[]);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        // Any point in the rect must cost at least the bound.
        let rect = Rect::new(0.4, 0.4, 0.6, 0.6);
        let q = queries();
        let samples = [
            Point::new(0.4, 0.4),
            Point::new(0.6, 0.6),
            Point::new(0.5, 0.5),
            Point::new(0.45, 0.57),
        ];
        for agg in Aggregate::ALL {
            let lb = agg.lower_bound(&rect, &q);
            for s in &samples {
                assert!(
                    agg.eval(s, &q) >= lb - 1e-12,
                    "{agg}: eval {} < bound {lb}",
                    agg.eval(s, &q)
                );
            }
        }
    }

    #[test]
    fn lower_bound_tight_for_point_rect() {
        let p = Point::new(0.2, 0.7);
        let rect = Rect::from_point(p);
        let q = queries();
        for agg in Aggregate::ALL {
            assert!((agg.lower_bound(&rect, &q) - agg.eval(&p, &q)).abs() < 1e-12);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Aggregate::Sum.to_string(), "sum");
        assert_eq!(Aggregate::Max.to_string(), "max");
        assert_eq!(Aggregate::Min.to_string(), "min");
    }
}
