//! A dynamic POI index — substantiates the paper's claim that PPGNN
//! "can easily handle a dynamic database on LSP" (§1), in contrast to
//! pre-computation approaches (APNN) that must rebuild per-cell answers
//! on every update.
//!
//! Design: a static bulk-loaded R-tree plus an insertion buffer and a
//! deletion tombstone set. Queries merge the tree's answer with the
//! buffer and filter tombstones; when the buffer outgrows a threshold
//! the tree is rebuilt. Updates are therefore O(1) amortized, queries
//! pay `O(|buffer|)` extra — negligible at the rebuild threshold.

use std::collections::HashSet;

use crate::aggregate::Aggregate;
use crate::poi::{Poi, PoiId};
use crate::point::Point;
use crate::rtree::RTree;

/// Buffer size that triggers a rebuild.
const DEFAULT_REBUILD_THRESHOLD: usize = 1024;

/// One mutation of the live POI set.
///
/// The unit of the dynamic-world admin lane: wire `PoiUpdate` frames
/// decode to a batch of these, and [`DynamicRTree::apply`] consumes
/// them in order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoiOp {
    /// Insert a POI, replacing any live POI with the same id.
    Insert(Poi),
    /// Remove a POI by id (no-op if absent).
    Remove(PoiId),
}

/// An updatable POI index with R-tree query performance.
#[derive(Debug, Clone)]
pub struct DynamicRTree {
    tree: RTree,
    /// Ids currently stored in the static tree (for O(1) delete checks).
    tree_ids: HashSet<PoiId>,
    inserts: Vec<Poi>,
    tombstones: HashSet<PoiId>,
    rebuild_threshold: usize,
    rebuilds: u64,
}

impl DynamicRTree {
    /// Bulk-loads the initial database.
    pub fn new(pois: Vec<Poi>) -> Self {
        let tree_ids = pois.iter().map(|p| p.id).collect();
        DynamicRTree {
            tree: RTree::bulk_load(pois),
            tree_ids,
            inserts: Vec::new(),
            tombstones: HashSet::new(),
            rebuild_threshold: DEFAULT_REBUILD_THRESHOLD,
            rebuilds: 0,
        }
    }

    /// Overrides the rebuild threshold (mostly for tests).
    pub fn with_rebuild_threshold(mut self, threshold: usize) -> Self {
        self.rebuild_threshold = threshold.max(1);
        self
    }

    /// Live POI count (tree + buffer − tombstones).
    pub fn len(&self) -> usize {
        self.tree.len() + self.inserts.len() - self.tombstones.len()
    }

    /// `true` iff no live POIs remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many rebuilds updates have triggered so far.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Inserts a POI, *replacing* any live POI with the same id.
    /// Amortized O(1); triggers a rebuild when the buffer fills.
    pub fn insert(&mut self, poi: Poi) {
        self.remove(poi.id);
        self.inserts.push(poi);
        if self.inserts.len() >= self.rebuild_threshold {
            self.rebuild();
        }
    }

    /// Deletes a POI by id (no-op if absent). O(1).
    pub fn remove(&mut self, id: PoiId) {
        if let Some(pos) = self.inserts.iter().position(|p| p.id == id) {
            self.inserts.swap_remove(pos);
        } else if self.tree_ids.contains(&id) {
            self.tombstones.insert(id);
        }
    }

    /// Folds the buffer and tombstones back into a fresh static tree.
    pub fn rebuild(&mut self) {
        let mut all: Vec<Poi> = self
            .tree
            .iter()
            .filter(|p| !self.tombstones.contains(&p.id))
            .copied()
            .collect();
        all.append(&mut self.inserts);
        self.tombstones.clear();
        self.tree_ids = all.iter().map(|p| p.id).collect();
        self.tree = RTree::bulk_load(all);
        self.rebuilds += 1;
    }

    /// Group-kNN over the live POIs (Definition 2.1 semantics, ties by
    /// id, exactly like [`RTree::group_knn`]).
    pub fn group_knn(&self, queries: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        // Over-fetch from the tree: tombstoned POIs may occupy top slots.
        let fetch = k + self.tombstones.len();
        let mut merged: Vec<Poi> = self
            .tree
            .group_knn(queries, fetch, agg)
            .into_iter()
            .filter(|p| !self.tombstones.contains(&p.id))
            .collect();
        merged.extend(self.inserts.iter().copied());
        let mut scored: Vec<(f64, Poi)> = merged
            .into_iter()
            .map(|p| (agg.eval(&p.location, queries), p))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        scored.into_iter().take(k).map(|(_, p)| p).collect()
    }

    /// Classic kNN over the live POIs.
    pub fn knn(&self, query: &Point, k: usize) -> Vec<Poi> {
        self.group_knn(std::slice::from_ref(query), k, Aggregate::Sum)
    }

    /// Applies a batch of mutations in order. Returns the number of
    /// operations that changed the live set (an insert always counts —
    /// replacement included — a remove only when the id was live).
    pub fn apply(&mut self, ops: &[PoiOp]) -> usize {
        let mut changed = 0;
        for op in ops {
            match *op {
                PoiOp::Insert(poi) => {
                    self.insert(poi);
                    changed += 1;
                }
                PoiOp::Remove(id) => {
                    let before = self.len();
                    self.remove(id);
                    if self.len() != before {
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Snapshot of the live POI set (tree + buffer − tombstones), in no
    /// particular order. Used to republish frozen engines.
    pub fn live_pois(&self) -> Vec<Poi> {
        let mut all: Vec<Poi> = self
            .tree
            .iter()
            .filter(|p| !self.tombstones.contains(&p.id))
            .copied()
            .collect();
        all.extend(self.inserts.iter().copied());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::group_knn_brute_force;

    fn grid(n: u32) -> Vec<Poi> {
        (0..n * n)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % n) as f64 / n as f64, (i / n) as f64 / n as f64),
                )
            })
            .collect()
    }

    /// Oracle: live set maintained as a plain vector.
    struct Oracle(Vec<Poi>);
    impl Oracle {
        fn insert(&mut self, p: Poi) {
            self.0.retain(|q| q.id != p.id);
            self.0.push(p);
        }
        fn remove(&mut self, id: PoiId) {
            self.0.retain(|q| q.id != id);
        }
    }

    #[test]
    fn insert_visible_immediately() {
        let mut t = DynamicRTree::new(grid(10));
        let q = Point::new(0.345, 0.345);
        let star = Poi::new(9999, q);
        t.insert(star);
        assert_eq!(t.knn(&q, 1)[0].id, 9999);
        assert_eq!(t.len(), 101);
    }

    #[test]
    fn remove_hides_immediately() {
        let mut t = DynamicRTree::new(grid(10));
        let q = Point::new(0.0, 0.0);
        let nearest = t.knn(&q, 1)[0];
        t.remove(nearest.id);
        assert_ne!(t.knn(&q, 1)[0].id, nearest.id);
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn remove_buffered_insert() {
        let mut t = DynamicRTree::new(grid(5));
        t.insert(Poi::new(777, Point::new(0.5, 0.5)));
        t.remove(777);
        assert_eq!(t.len(), 25);
        assert!(t.knn(&Point::new(0.5, 0.5), 25).iter().all(|p| p.id != 777));
    }

    #[test]
    fn reinsert_after_delete_revives() {
        let mut t = DynamicRTree::new(grid(5));
        t.remove(12);
        t.insert(Poi::new(12, Point::new(0.9, 0.9)));
        assert_eq!(t.len(), 25);
        let hit = t.knn(&Point::new(0.9, 0.9), 1)[0];
        assert_eq!(hit.id, 12);
    }

    #[test]
    fn rebuild_preserves_results() {
        let mut t = DynamicRTree::new(grid(8)).with_rebuild_threshold(4);
        // Off-grid positions so no insert ties with an existing POI.
        for i in 0..10 {
            t.insert(Poi::new(
                1000 + i,
                Point::new(0.05 * i as f64 + 0.012, 0.47),
            ));
        }
        assert!(t.rebuild_count() >= 2, "threshold 4 with 10 inserts");
        assert_eq!(t.len(), 74);
        let q = Point::new(0.012, 0.47);
        assert_eq!(t.knn(&q, 1)[0].id, 1000);
    }

    #[test]
    fn randomized_update_stream_matches_oracle() {
        let mut t = DynamicRTree::new(grid(10)).with_rebuild_threshold(16);
        let mut oracle = Oracle(grid(10));
        // A deterministic pseudo-random update stream.
        let mut state = 0x12345u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..300 {
            let r = rnd();
            if r % 3 == 0 {
                let id = (r % 100) as u32;
                t.remove(id);
                oracle.remove(id);
            } else {
                let p = Poi::new(
                    200 + (r % 500) as u32,
                    Point::new((r % 97) as f64 / 97.0, (r % 89) as f64 / 89.0),
                );
                t.insert(p);
                oracle.insert(p);
            }
            if step % 25 == 0 {
                let q = vec![Point::new(0.3, 0.3), Point::new(0.7, 0.6)];
                let got: Vec<u32> = t
                    .group_knn(&q, 5, Aggregate::Sum)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                let want: Vec<u32> = group_knn_brute_force(&oracle.0, &q, 5, Aggregate::Sum)
                    .iter()
                    .map(|p| p.id)
                    .collect();
                assert_eq!(got, want, "step {step}");
            }
        }
    }

    #[test]
    fn apply_batch_matches_individual_ops() {
        let mut batched = DynamicRTree::new(grid(6));
        let mut single = DynamicRTree::new(grid(6));
        let ops = vec![
            PoiOp::Insert(Poi::new(500, Point::new(0.11, 0.93))),
            PoiOp::Remove(3),
            PoiOp::Insert(Poi::new(501, Point::new(0.44, 0.21))),
            PoiOp::Remove(999), // absent: must not count as a change
            PoiOp::Insert(Poi::new(500, Point::new(0.12, 0.94))), // replace
        ];
        let changed = batched.apply(&ops);
        assert_eq!(changed, 4);
        single.insert(Poi::new(500, Point::new(0.11, 0.93)));
        single.remove(3);
        single.insert(Poi::new(501, Point::new(0.44, 0.21)));
        single.remove(999);
        single.insert(Poi::new(500, Point::new(0.12, 0.94)));
        let q = vec![Point::new(0.2, 0.8), Point::new(0.5, 0.3)];
        assert_eq!(
            batched.group_knn(&q, 8, Aggregate::Sum),
            single.group_knn(&q, 8, Aggregate::Sum)
        );
        let mut live = batched.live_pois();
        live.sort_by_key(|p| p.id);
        assert_eq!(live.len(), batched.len());
        assert!(live
            .iter()
            .any(|p| p.id == 500 && p.location == Point::new(0.12, 0.94)));
    }

    #[test]
    fn duplicate_insert_id_both_returned_consistently() {
        // Duplicate ids in the buffer are the caller's bug, but deletes
        // must still clear the one in the buffer deterministically.
        let mut t = DynamicRTree::new(vec![]);
        t.insert(Poi::new(1, Point::new(0.1, 0.1)));
        t.insert(Poi::new(2, Point::new(0.2, 0.2)));
        assert_eq!(t.len(), 2);
        t.remove(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.knn(&Point::new(0.0, 0.0), 2).len(), 1);
    }
}
