//! Brute-force kNN oracle: the reference implementation index-based
//! algorithms are validated against.

use crate::poi::Poi;
use crate::point::Point;

/// The `k` POIs nearest to `query`, ascending by `(distance, id)`.
pub fn knn_brute_force(pois: &[Poi], query: &Point, k: usize) -> Vec<Poi> {
    let mut all: Vec<Poi> = pois.to_vec();
    all.sort_by(|a, b| {
        a.location
            .dist_sq(query)
            .total_cmp(&b.location.dist_sq(query))
            .then_with(|| a.id.cmp(&b.id))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pois() -> Vec<Poi> {
        vec![
            Poi::new(0, Point::new(0.9, 0.9)),
            Poi::new(1, Point::new(0.1, 0.1)),
            Poi::new(2, Point::new(0.5, 0.5)),
            Poi::new(3, Point::new(0.11, 0.1)),
        ]
    }

    #[test]
    fn returns_nearest_in_order() {
        let res = knn_brute_force(&pois(), &Point::ORIGIN, 2);
        assert_eq!(res.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn k_exceeds_size() {
        assert_eq!(knn_brute_force(&pois(), &Point::ORIGIN, 10).len(), 4);
    }

    #[test]
    fn k_zero() {
        assert!(knn_brute_force(&pois(), &Point::ORIGIN, 0).is_empty());
    }

    #[test]
    fn equidistant_tie_broken_by_id() {
        let tied = vec![
            Poi::new(5, Point::new(1.0, 0.0)),
            Poi::new(2, Point::new(0.0, 1.0)),
            Poi::new(8, Point::new(-1.0, 0.0)),
        ];
        let res = knn_brute_force(&tied, &Point::ORIGIN, 3);
        assert_eq!(res.iter().map(|p| p.id).collect::<Vec<_>>(), vec![2, 5, 8]);
    }
}
