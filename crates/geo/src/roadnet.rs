//! Road-network distance — the paper's Definition 2.1 allows any metric
//! `dis`, citing road-network distance \[38\] alongside Euclidean. This
//! module provides the substrate: a weighted road graph, Dijkstra
//! shortest paths, snapping of free points to the network, and a
//! road-distance group-kNN evaluated via one single-source shortest-path
//! tree per query location.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::aggregate::Aggregate;
use crate::poi::Poi;
use crate::point::Point;

/// Node identifier within a road network.
pub type NodeId = u32;

/// A weighted, undirected road network embedded in the plane.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    /// Adjacency: `adj[u]` lists `(v, weight)`.
    adj: Vec<Vec<(NodeId, f64)>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapNode {
    dist: f64,
    node: NodeId,
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the closest node.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl RoadNetwork {
    /// Builds a network from embedded nodes and undirected edges with
    /// Euclidean edge weights.
    ///
    /// # Panics
    /// Panics on an edge referencing a missing node.
    pub fn from_edges(nodes: Vec<Point>, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj = vec![Vec::new(); nodes.len()];
        for &(a, b) in edges {
            let (ai, bi) = (a as usize, b as usize);
            assert!(
                ai < nodes.len() && bi < nodes.len(),
                "edge ({a},{b}) out of range"
            );
            let w = nodes[ai].dist(&nodes[bi]);
            adj[ai].push((b, w));
            adj[bi].push((a, w));
        }
        RoadNetwork { nodes, adj }
    }

    /// A jittered grid network over the unit square (`rows × cols`
    /// intersections, 4-connected) — a synthetic city street plan.
    /// Deterministic in `(rows, cols, jitter, seed)`.
    pub fn grid(rows: usize, cols: usize, jitter: f64, seed: u64) -> Self {
        assert!(
            rows >= 2 && cols >= 2,
            "grid needs at least 2×2 intersections"
        );
        // A tiny xorshift so geo does not depend on rand.
        let mut state = seed | 1;
        let mut next_unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut nodes = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let x = c as f64 / (cols - 1) as f64;
                let y = r as f64 / (rows - 1) as f64;
                nodes.push(Point::new(
                    (x + (next_unit() - 0.5) * jitter).clamp(0.0, 1.0),
                    (y + (next_unit() - 0.5) * jitter).clamp(0.0, 1.0),
                ));
            }
        }
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| (r * cols + c) as NodeId;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Self::from_edges(nodes, &edges)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The embedded location of a node.
    pub fn node_location(&self, id: NodeId) -> Point {
        self.nodes[id as usize]
    }

    /// The network node nearest to a free point (linear scan; snapping
    /// happens once per query location, not in inner loops).
    pub fn snap(&self, p: &Point) -> NodeId {
        assert!(!self.nodes.is_empty(), "snap on an empty network");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, n) in self.nodes.iter().enumerate() {
            let d = n.dist_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best as NodeId
    }

    /// Single-source shortest-path distances (Dijkstra). Unreachable
    /// nodes report `f64::INFINITY`.
    pub fn sssp(&self, source: NodeId) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; self.nodes.len()];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0.0;
        heap.push(HeapNode {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapNode { dist: d, node }) = heap.pop() {
            if d > dist[node as usize] {
                continue; // stale entry
            }
            for &(next, w) in &self.adj[node as usize] {
                let nd = d + w;
                if nd < dist[next as usize] {
                    dist[next as usize] = nd;
                    heap.push(HeapNode {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        dist
    }

    /// Network distance between two free points: snap both endpoints,
    /// walk the network, and add the snap offsets (the standard
    /// snap-based approximation of \[38\]-style road kGNN).
    pub fn network_dist(&self, a: &Point, b: &Point) -> f64 {
        let (sa, sb) = (self.snap(a), self.snap(b));
        let on_net = self.sssp(sa)[sb as usize];
        a.dist(&self.node_location(sa)) + on_net + b.dist(&self.node_location(sb))
    }

    /// Road-distance group-kNN: the `k` POIs minimizing the aggregate of
    /// *network* distances to all query locations — one Dijkstra per
    /// query location, then a scored scan over the POIs.
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn group_knn(&self, pois: &[Poi], queries: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        assert!(!queries.is_empty(), "group kNN with no query locations");
        // Per-query SSSP trees plus the snap offsets.
        let trees: Vec<(Vec<f64>, f64)> = queries
            .iter()
            .map(|q| {
                let s = self.snap(q);
                (self.sssp(s), q.dist(&self.node_location(s)))
            })
            .collect();
        let mut scored: Vec<(f64, Poi)> = pois
            .iter()
            .map(|p| {
                let ps = self.snap(&p.location);
                let off = p.location.dist(&self.node_location(ps));
                let dists = trees
                    .iter()
                    .map(|(tree, qoff)| qoff + tree[ps as usize] + off);
                let cost = match agg {
                    Aggregate::Sum => dists.sum(),
                    Aggregate::Max => dists.fold(f64::NEG_INFINITY, f64::max),
                    Aggregate::Min => dists.fold(f64::INFINITY, f64::min),
                };
                (cost, *p)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        scored.into_iter().take(k).map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node diamond: 0-1, 1-3, 0-2, 2-3 with asymmetric side lengths.
    fn diamond() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.5), // 0 west
            Point::new(0.5, 1.0), // 1 north
            Point::new(0.5, 0.0), // 2 south
            Point::new(1.0, 0.5), // 3 east
        ];
        RoadNetwork::from_edges(nodes, &[(0, 1), (1, 3), (0, 2), (2, 3)])
    }

    #[test]
    fn sssp_matches_hand_computation() {
        let net = diamond();
        let dist = net.sssp(0);
        let side = Point::new(0.0, 0.5).dist(&Point::new(0.5, 1.0)); // ≈ 0.7071
        assert!((dist[0] - 0.0).abs() < 1e-12);
        assert!((dist[1] - side).abs() < 1e-12);
        assert!((dist[2] - side).abs() < 1e-12);
        assert!((dist[3] - 2.0 * side).abs() < 1e-12);
    }

    #[test]
    fn sssp_matches_floyd_warshall_oracle() {
        let net = RoadNetwork::grid(4, 5, 0.02, 7);
        let n = net.node_count();
        // Floyd–Warshall oracle.
        let mut fw = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in fw.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        #[allow(clippy::needless_range_loop)] // u indexes the oracle matrix too
        for u in 0..n {
            for &(v, w) in &net.adj[u] {
                fw[u][v as usize] = fw[u][v as usize].min(w);
            }
        }
        for m in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let through = fw[i][m] + fw[m][j];
                    if through < fw[i][j] {
                        fw[i][j] = through;
                    }
                }
            }
        }
        for src in [0usize, n / 2, n - 1] {
            let d = net.sssp(src as NodeId);
            for j in 0..n {
                assert!((d[j] - fw[src][j]).abs() < 1e-9, "src={src} j={j}");
            }
        }
    }

    #[test]
    fn disconnected_nodes_are_infinite() {
        let nodes = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let net = RoadNetwork::from_edges(nodes, &[]);
        let d = net.sssp(0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], f64::INFINITY);
    }

    #[test]
    fn network_dist_at_least_euclidean() {
        // Road distance can never beat the straight line (triangle
        // inequality through the snap points).
        let net = RoadNetwork::grid(6, 6, 0.0, 1);
        for (a, b) in [
            (Point::new(0.1, 0.1), Point::new(0.9, 0.9)),
            (Point::new(0.0, 0.5), Point::new(1.0, 0.5)),
            (Point::new(0.33, 0.77), Point::new(0.51, 0.12)),
        ] {
            assert!(net.network_dist(&a, &b) >= a.dist(&b) - 1e-9);
        }
    }

    #[test]
    fn network_dist_symmetric() {
        let net = RoadNetwork::grid(5, 5, 0.03, 3);
        let a = Point::new(0.2, 0.7);
        let b = Point::new(0.8, 0.3);
        assert!((net.network_dist(&a, &b) - net.network_dist(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn snap_picks_nearest_node() {
        let net = diamond();
        assert_eq!(net.snap(&Point::new(0.05, 0.5)), 0);
        assert_eq!(net.snap(&Point::new(0.5, 0.95)), 1);
        assert_eq!(net.snap(&Point::new(0.99, 0.51)), 3);
    }

    #[test]
    fn grid_connectivity() {
        let net = RoadNetwork::grid(3, 4, 0.0, 1);
        assert_eq!(net.node_count(), 12);
        assert_eq!(net.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
                                                     // Fully connected: every node reachable.
        let d = net.sssp(0);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn road_group_knn_differs_from_euclidean() {
        // A wall of missing streets makes a Euclidean-near POI far by road.
        // Network: a 2×5 ladder missing all rungs except the ends — going
        // "across" in the middle requires a long detour.
        let mut nodes = Vec::new();
        for c in 0..5 {
            nodes.push(Point::new(c as f64 / 4.0, 0.0)); // bottom row 0..5
        }
        for c in 0..5 {
            nodes.push(Point::new(c as f64 / 4.0, 0.2)); // top row 5..10
        }
        let mut edges = Vec::new();
        for c in 0..4u32 {
            edges.push((c, c + 1)); // bottom
            edges.push((5 + c, 5 + c + 1)); // top
        }
        edges.push((0, 5)); // only the left end connects the rows
        let net = RoadNetwork::from_edges(nodes, &edges);

        let user = vec![Point::new(1.0, 0.0)]; // bottom-right corner
        let pois = vec![
            Poi::new(0, Point::new(1.0, 0.2)), // straight above: near in L2, far by road
            Poi::new(1, Point::new(0.5, 0.0)), // two blocks west on the same row
        ];
        let road = net.group_knn(&pois, &user, 1, Aggregate::Sum);
        assert_eq!(road[0].id, 1, "road distance must prefer the same-row POI");
        // Euclidean would pick POI 0 (distance 0.2 vs 0.5).
        let euclid = crate::gnn::group_knn_brute_force(&pois, &user, 1, Aggregate::Sum);
        assert_eq!(euclid[0].id, 0);
    }

    #[test]
    fn road_group_knn_all_aggregates_sorted() {
        let net = RoadNetwork::grid(5, 5, 0.02, 9);
        let pois: Vec<Poi> = (0..30)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new(((i * 7) % 30) as f64 / 30.0, ((i * 11) % 30) as f64 / 30.0),
                )
            })
            .collect();
        let queries = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.6)];
        for agg in Aggregate::ALL {
            let res = net.group_knn(&pois, &queries, 10, agg);
            assert_eq!(res.len(), 10, "{agg}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        let _ = RoadNetwork::from_edges(vec![Point::ORIGIN], &[(0, 5)]);
    }

    #[test]
    fn grid_is_deterministic() {
        let a = RoadNetwork::grid(4, 4, 0.05, 42);
        let b = RoadNetwork::grid(4, 4, 0.05, 42);
        for i in 0..a.node_count() {
            assert_eq!(a.node_location(i as NodeId), b.node_location(i as NodeId));
        }
    }
}
