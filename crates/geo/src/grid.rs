//! Uniform grid partition of the data space — the substrate of the APNN
//! baseline (\[36\]): LSP pre-computes a kNN answer per grid cell, and the
//! user's cloak region is a `b × b` block of cells.

use crate::point::Point;
use crate::rect::Rect;

/// A `cells × cells` uniform grid over a bounding space.
#[derive(Debug, Clone)]
pub struct Grid {
    space: Rect,
    cells: usize,
}

impl Grid {
    /// Creates a grid with `cells` columns and rows.
    ///
    /// # Panics
    /// Panics if `cells == 0` or the space is degenerate.
    pub fn new(space: Rect, cells: usize) -> Self {
        assert!(cells > 0, "grid needs at least one cell");
        assert!(
            space.width() > 0.0 && space.height() > 0.0,
            "degenerate grid space"
        );
        Grid { space, cells }
    }

    /// Grid resolution per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells * self.cells
    }

    /// The cell `(col, row)` containing `p` (clamped to the grid).
    pub fn locate(&self, p: &Point) -> (usize, usize) {
        let fx = (p.x - self.space.min_x) / self.space.width();
        let fy = (p.y - self.space.min_y) / self.space.height();
        let col = ((fx * self.cells as f64) as isize).clamp(0, self.cells as isize - 1) as usize;
        let row = ((fy * self.cells as f64) as isize).clamp(0, self.cells as isize - 1) as usize;
        (col, row)
    }

    /// Flat index of a cell.
    pub fn flat_index(&self, (col, row): (usize, usize)) -> usize {
        row * self.cells + col
    }

    /// Center point of a cell — the anchor of APNN's pre-computed answers.
    pub fn cell_center(&self, (col, row): (usize, usize)) -> Point {
        let w = self.space.width() / self.cells as f64;
        let h = self.space.height() / self.cells as f64;
        Point::new(
            self.space.min_x + (col as f64 + 0.5) * w,
            self.space.min_y + (row as f64 + 0.5) * h,
        )
    }

    /// Rectangle of a cell.
    pub fn cell_rect(&self, (col, row): (usize, usize)) -> Rect {
        let w = self.space.width() / self.cells as f64;
        let h = self.space.height() / self.cells as f64;
        Rect::new(
            self.space.min_x + col as f64 * w,
            self.space.min_y + row as f64 * h,
            self.space.min_x + (col as f64 + 1.0) * w,
            self.space.min_y + (row as f64 + 1.0) * h,
        )
    }

    /// The `b × b` block of cells anchored so it contains `(col, row)` and
    /// stays inside the grid — APNN's square cloak region of `b²` cells.
    pub fn cloak_block(&self, (col, row): (usize, usize), b: usize) -> Vec<(usize, usize)> {
        let b = b.min(self.cells);
        let start_col = col.saturating_sub(b / 2).min(self.cells - b);
        let start_row = row.saturating_sub(b / 2).min(self.cells - b);
        let mut out = Vec::with_capacity(b * b);
        for r in start_row..start_row + b {
            for c in start_col..start_col + b {
                out.push((c, r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(Rect::UNIT, 10)
    }

    #[test]
    fn locate_basic() {
        let g = grid();
        assert_eq!(g.locate(&Point::new(0.05, 0.05)), (0, 0));
        assert_eq!(g.locate(&Point::new(0.95, 0.95)), (9, 9));
        assert_eq!(g.locate(&Point::new(0.55, 0.25)), (5, 2));
    }

    #[test]
    fn locate_clamps_outside_points() {
        let g = grid();
        assert_eq!(g.locate(&Point::new(-1.0, 2.0)), (0, 9));
        assert_eq!(g.locate(&Point::new(1.0, 1.0)), (9, 9));
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let g = grid();
        for cell in [(0, 0), (5, 2), (9, 9)] {
            let c = g.cell_center(cell);
            assert!(g.cell_rect(cell).contains(&c));
            assert_eq!(g.locate(&c), cell);
        }
    }

    #[test]
    fn flat_index_unique() {
        let g = grid();
        let mut seen = std::collections::HashSet::new();
        for row in 0..10 {
            for col in 0..10 {
                assert!(seen.insert(g.flat_index((col, row))));
            }
        }
        assert_eq!(seen.len(), g.cell_count());
    }

    #[test]
    fn cloak_block_size_and_containment() {
        let g = grid();
        for cell in [(0, 0), (5, 5), (9, 9), (9, 0)] {
            let block = g.cloak_block(cell, 5);
            assert_eq!(block.len(), 25);
            assert!(block.contains(&cell), "block must contain the user's cell");
            assert!(block.iter().all(|&(c, r)| c < 10 && r < 10));
        }
    }

    #[test]
    fn cloak_block_clipped_to_grid_size() {
        let g = Grid::new(Rect::UNIT, 3);
        let block = g.cloak_block((1, 1), 5);
        assert_eq!(block.len(), 9, "b is clipped to the grid axis");
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = Grid::new(Rect::UNIT, 0);
    }
}
