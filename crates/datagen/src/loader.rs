//! Loading a real POI dataset from disk.
//!
//! The paper's Sequoia download link is dead, but deployments that do
//! have the file (or any other `x,y[,name]` CSV) can drop it in: this
//! loader parses it, normalizes the coordinates into the unit square
//! (exactly the paper's normalization step), and hands back the same
//! `Vec<Poi>` shape as the synthetic generator.

use std::io::BufRead;
use std::path::Path;

use ppgnn_geo::{Poi, Point};

/// Errors raised while loading a POI CSV.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number, message).
    Parse(usize, String),
    /// Fewer than two points: normalization is undefined.
    TooFewPoints(usize),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            LoadError::TooFewPoints(n) => {
                write!(f, "dataset has {n} points; need at least 2 to normalize")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses `x,y[,anything…]` lines (blank lines and `#` comments skipped).
pub fn parse_poi_csv<R: BufRead>(reader: R) -> Result<Vec<Point>, LoadError> {
    let mut raw = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let x: f64 = fields
            .next()
            .ok_or_else(|| LoadError::Parse(idx + 1, "missing x".into()))?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse(idx + 1, format!("bad x: {e}")))?;
        let y: f64 = fields
            .next()
            .ok_or_else(|| LoadError::Parse(idx + 1, "missing y".into()))?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse(idx + 1, format!("bad y: {e}")))?;
        raw.push(Point::new(x, y));
    }
    Ok(raw)
}

/// Normalizes raw coordinates into the unit square, preserving aspect
/// ratio on the dominant axis (the paper's "normalized into a square
/// space").
pub fn normalize_to_unit_square(raw: &[Point]) -> Result<Vec<Poi>, LoadError> {
    if raw.len() < 2 {
        return Err(LoadError::TooFewPoints(raw.len()));
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in raw {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let scale = (max_x - min_x).max(max_y - min_y);
    if scale <= 0.0 {
        return Err(LoadError::TooFewPoints(1)); // all points identical
    }
    Ok(raw
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Poi::new(
                i as u32,
                Point::new((p.x - min_x) / scale, (p.y - min_y) / scale),
            )
        })
        .collect())
}

/// Loads and normalizes a POI CSV file.
pub fn load_poi_csv(path: &Path) -> Result<Vec<Poi>, LoadError> {
    let file = std::fs::File::open(path)?;
    let raw = parse_poi_csv(std::io::BufReader::new(file))?;
    normalize_to_unit_square(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_csv() {
        let csv = "1.0,2.0\n3.5,4.5,Some Name\n\n# comment\n5.0, 6.0\n";
        let pts = parse_poi_csv(Cursor::new(csv)).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], Point::new(3.5, 4.5));
        assert_eq!(pts[2], Point::new(5.0, 6.0));
    }

    #[test]
    fn rejects_malformed_line() {
        let err = parse_poi_csv(Cursor::new("1.0,2.0\nnot,a number\n")).unwrap_err();
        assert!(matches!(err, LoadError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_missing_column() {
        let err = parse_poi_csv(Cursor::new("42\n")).unwrap_err();
        assert!(err.to_string().contains("bad y") || err.to_string().contains("missing y"));
    }

    #[test]
    fn normalization_fits_unit_square() {
        // California-ish longitudes/latitudes.
        let raw = vec![
            Point::new(-124.4, 32.5),
            Point::new(-114.1, 42.0),
            Point::new(-120.0, 37.2),
        ];
        let pois = normalize_to_unit_square(&raw).unwrap();
        for p in &pois {
            assert!(p.location.x >= 0.0 && p.location.x <= 1.0);
            assert!(p.location.y >= 0.0 && p.location.y <= 1.0);
        }
        // Aspect ratio preserved: relative x-distances scale uniformly.
        let dx_raw = (raw[1].x - raw[0].x).abs();
        let dy_raw = (raw[1].y - raw[0].y).abs();
        let dx = (pois[1].location.x - pois[0].location.x).abs();
        let dy = (pois[1].location.y - pois[0].location.y).abs();
        assert!((dx / dy - dx_raw / dy_raw).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            normalize_to_unit_square(&[Point::new(1.0, 1.0)]),
            Err(LoadError::TooFewPoints(1))
        ));
        assert!(normalize_to_unit_square(&[]).is_err());
    }

    #[test]
    fn identical_points_rejected() {
        let raw = vec![Point::new(5.0, 5.0); 3];
        assert!(normalize_to_unit_square(&raw).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ppgnn_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pois.csv");
        std::fs::write(&path, "0.0,0.0\n10.0,5.0\n5.0,10.0\n").unwrap();
        let pois = load_poi_csv(&path).unwrap();
        assert_eq!(pois.len(), 3);
        assert_eq!(pois[0].id, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_poi_csv(Path::new("/nonexistent/x.csv")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }
}
