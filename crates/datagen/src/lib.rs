//! Synthetic datasets and query workloads.
//!
//! The paper evaluates on the **Sequoia** dataset: 62 556 POIs from
//! California, normalized into a square space, with user locations drawn
//! uniformly at random from that space. The original download link is
//! dead, so [`sequoia_like`] generates a deterministic synthetic stand-in:
//! a Gaussian-mixture over the unit square whose heavy clustering mimics
//! California's metro areas (see DESIGN.md §3 for the substitution
//! rationale). All protocol and cost behaviour in the paper depends only
//! on the normalized space, the cardinality, and clustered density — all
//! preserved here.

mod dummy;
mod loader;
mod sequoia;
mod workload;

pub use dummy::{DummyGenerator, DummyStrategy};
pub use loader::{load_poi_csv, normalize_to_unit_square, parse_poi_csv, LoadError};
pub use sequoia::{sequoia_like, uniform_pois, SEQUOIA_SIZE};
pub use workload::{QuerySpec, Workload};
