//! Query workloads: batches of random group queries over the data space,
//! as in §8.1 ("the real location for every user in a group query was
//! randomly generated as a point in this space... We executed 500 queries
//! and reported the average cost").

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ppgnn_geo::{Point, Rect};

/// The parameters of one experiment configuration (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Group size `n`.
    pub n: usize,
    /// POIs to retrieve `k`.
    pub k: usize,
    /// Privacy I parameter `d` (location-set size).
    pub d: usize,
    /// Privacy II parameter `δ` (candidate-query anonymity).
    pub delta: usize,
    /// Privacy IV parameter `θ₀` (minimum hidden-region fraction).
    pub theta0: f64,
}

impl QuerySpec {
    /// Table 3 defaults for the group scenario (`n > 1`).
    pub fn group_defaults() -> Self {
        QuerySpec {
            n: 8,
            k: 8,
            d: 25,
            delta: 100,
            theta0: 0.05,
        }
    }

    /// Table 3 defaults for the single-user scenario (`n = 1`,
    /// where `δ = d` and Privacy IV does not apply).
    pub fn single_defaults() -> Self {
        QuerySpec {
            n: 1,
            k: 8,
            d: 25,
            delta: 25,
            theta0: 0.05,
        }
    }
}

/// A reproducible stream of random group queries.
#[derive(Debug, Clone)]
pub struct Workload {
    space: Rect,
    rng: ChaCha8Rng,
}

impl Workload {
    /// Creates a workload over `space` from a fixed seed.
    pub fn new(space: Rect, seed: u64) -> Self {
        Workload {
            space,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Workload over the unit square.
    pub fn unit(seed: u64) -> Self {
        Workload::new(Rect::UNIT, seed)
    }

    /// Draws the real locations of one `n`-user group query.
    pub fn next_group(&mut self, n: usize) -> Vec<Point> {
        (0..n)
            .map(|_| {
                Point::new(
                    self.space.min_x + self.rng.gen::<f64>() * self.space.width(),
                    self.space.min_y + self.rng.gen::<f64>() * self.space.height(),
                )
            })
            .collect()
    }

    /// Draws a batch of `count` group queries.
    pub fn batch(&mut self, count: usize, n: usize) -> Vec<Vec<Point>> {
        (0..count).map(|_| self.next_group(n)).collect()
    }

    /// Draws an `n`-user group clustered around a random anchor: every
    /// member lies within `spread` (per axis) of the anchor, clamped to
    /// the space. Models friends meeting in the same part of town —
    /// uniform groups (the paper's workload) are the `spread → space`
    /// limit.
    pub fn next_clustered_group(&mut self, n: usize, spread: f64) -> Vec<Point> {
        assert!(spread > 0.0, "spread must be positive");
        let anchor = self.next_group(1)[0];
        (0..n)
            .map(|_| {
                let dx = (self.rng.gen::<f64>() - 0.5) * 2.0 * spread;
                let dy = (self.rng.gen::<f64>() - 0.5) * 2.0 * spread;
                Point::new(
                    (anchor.x + dx).clamp(self.space.min_x, self.space.max_x),
                    (anchor.y + dy).clamp(self.space.min_y, self.space.max_y),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let g = QuerySpec::group_defaults();
        assert_eq!((g.n, g.k, g.d, g.delta), (8, 8, 25, 100));
        assert_eq!(g.theta0, 0.05);
        let s = QuerySpec::single_defaults();
        assert_eq!((s.n, s.d, s.delta), (1, 25, 25));
    }

    #[test]
    fn queries_inside_space() {
        let mut w = Workload::unit(1);
        for group in w.batch(50, 4) {
            assert_eq!(group.len(), 4);
            assert!(group.iter().all(|p| Rect::UNIT.contains(p)));
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = Workload::unit(9);
        let mut b = Workload::unit(9);
        assert_eq!(a.next_group(3), b.next_group(3));
        assert_eq!(a.next_group(5), b.next_group(5));
    }

    #[test]
    fn clustered_groups_are_tight() {
        let mut w = Workload::unit(3);
        for _ in 0..20 {
            let group = w.next_clustered_group(6, 0.05);
            assert_eq!(group.len(), 6);
            let bb = Rect::bounding(&group);
            assert!(bb.width() <= 0.1 + 1e-12 && bb.height() <= 0.1 + 1e-12);
            assert!(group.iter().all(|p| Rect::UNIT.contains(p)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spread_rejected() {
        Workload::unit(4).next_clustered_group(3, 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Workload::unit(1);
        let mut b = Workload::unit(2);
        assert_ne!(a.next_group(3), b.next_group(3));
    }
}
