//! Dummy-location generation (`C_l` in the paper's cost model).
//!
//! Privacy I hides each user's real location among `d − 1` dummies. The
//! paper cites dummy-generation algorithms \[20, 22\]; two strategies are
//! provided: uniform sampling over the whole space (the baseline the
//! paper's cost model assumes) and a grid-spread variant in the spirit of
//! \[22\] that keeps dummies mutually far apart so they are harder to
//! filter out by density analysis.

use rand::Rng;

use ppgnn_geo::{Point, Rect};

/// How dummy locations are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DummyStrategy {
    /// Uniform i.i.d. samples over the data space.
    Uniform,
    /// One sample per cell of a virtual √d × √d grid ("grid-spread"),
    /// keeping dummies spatially separated as in \[22\].
    GridSpread,
}

/// Generates dummy locations within a data space.
#[derive(Debug, Clone)]
pub struct DummyGenerator {
    space: Rect,
    strategy: DummyStrategy,
}

impl DummyGenerator {
    /// Creates a generator over `space`.
    pub fn new(space: Rect, strategy: DummyStrategy) -> Self {
        DummyGenerator { space, strategy }
    }

    /// Default generator: uniform dummies over the unit square.
    pub fn uniform_unit() -> Self {
        DummyGenerator::new(Rect::UNIT, DummyStrategy::Uniform)
    }

    /// Generates `count` dummy locations.
    pub fn generate<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Point> {
        match self.strategy {
            DummyStrategy::Uniform => (0..count).map(|_| self.sample_uniform(rng)).collect(),
            DummyStrategy::GridSpread => self.generate_grid_spread(count, rng),
        }
    }

    fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            self.space.min_x + rng.gen::<f64>() * self.space.width(),
            self.space.min_y + rng.gen::<f64>() * self.space.height(),
        )
    }

    fn generate_grid_spread<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Point> {
        if count == 0 {
            return Vec::new();
        }
        let axis = (count as f64).sqrt().ceil() as usize;
        let cw = self.space.width() / axis as f64;
        let ch = self.space.height() / axis as f64;
        let mut out = Vec::with_capacity(count);
        'outer: for row in 0..axis {
            for col in 0..axis {
                if out.len() == count {
                    break 'outer;
                }
                out.push(Point::new(
                    self.space.min_x + (col as f64 + rng.gen::<f64>()) * cw,
                    self.space.min_y + (row as f64 + rng.gen::<f64>()) * ch,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_dummies_inside_space() {
        let g = DummyGenerator::uniform_unit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for p in g.generate(500, &mut rng) {
            assert!(Rect::UNIT.contains(&p));
        }
    }

    #[test]
    fn exact_count_generated() {
        let g = DummyGenerator::uniform_unit();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for count in [0usize, 1, 7, 24, 49, 50] {
            assert_eq!(g.generate(count, &mut rng).len(), count);
        }
    }

    #[test]
    fn grid_spread_inside_space_and_counted() {
        let g = DummyGenerator::new(Rect::UNIT, DummyStrategy::GridSpread);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for count in [1usize, 5, 24, 25, 26] {
            let pts = g.generate(count, &mut rng);
            assert_eq!(pts.len(), count);
            assert!(pts.iter().all(|p| Rect::UNIT.contains(p)));
        }
    }

    #[test]
    fn grid_spread_is_spread_out() {
        // Minimum pairwise distance should beat uniform's typical minimum.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spread =
            DummyGenerator::new(Rect::UNIT, DummyStrategy::GridSpread).generate(25, &mut rng);
        let min_d = |pts: &[Point]| {
            let mut m = f64::INFINITY;
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    m = m.min(pts[i].dist(&pts[j]));
                }
            }
            m
        };
        // 25 grid cells of side 0.2: guaranteed structure; uniform would
        // frequently produce near-collisions.
        assert!(min_d(&spread) > 0.0);
    }

    #[test]
    fn custom_space_respected() {
        let space = Rect::new(10.0, 20.0, 11.0, 21.0);
        let g = DummyGenerator::new(space, DummyStrategy::Uniform);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for p in g.generate(100, &mut rng) {
            assert!(space.contains(&p));
        }
    }
}
