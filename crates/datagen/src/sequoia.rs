//! The synthetic Sequoia-like POI generator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ppgnn_geo::{Poi, Point, Rect};

/// Cardinality of the real Sequoia dataset (62 556 California POIs).
pub const SEQUOIA_SIZE: usize = 62_556;

/// Relative sizes and shapes of the synthetic "metro area" clusters.
/// Roughly inspired by California's population geography after the
/// dataset's normalization into the unit square: a handful of dense
/// clusters plus a diffuse background along a coastal band.
const CLUSTERS: [(f64, f64, f64, f64); 6] = [
    // (center_x, center_y, std_dev, weight)
    (0.22, 0.75, 0.05, 0.30), // bay-area-like dense cluster
    (0.55, 0.25, 0.07, 0.28), // southern metro cluster
    (0.60, 0.32, 0.03, 0.12), // inner dense core of the above
    (0.40, 0.55, 0.09, 0.12), // central valley band
    (0.75, 0.15, 0.05, 0.08), // inland south
    (0.15, 0.90, 0.04, 0.05), // northern cluster
];
/// Remaining weight is uniform background noise.
const BACKGROUND_WEIGHT: f64 = 0.05;

/// Generates `size` POIs over the unit square from a fixed seed.
///
/// Deterministic: the same `(size, seed)` always yields the same dataset,
/// so every experiment in EXPERIMENTS.md is exactly reproducible.
pub fn sequoia_like(size: usize, seed: u64) -> Vec<Poi> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_weight: f64 = CLUSTERS.iter().map(|c| c.3).sum::<f64>() + BACKGROUND_WEIGHT;
    (0..size)
        .map(|id| {
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut location = None;
            for &(cx, cy, sd, w) in &CLUSTERS {
                if pick < w {
                    location = Some(clamped_gaussian(&mut rng, cx, cy, sd));
                    break;
                }
                pick -= w;
            }
            let location = location.unwrap_or_else(|| Point::new(rng.gen(), rng.gen()));
            Poi::new(id as u32, location)
        })
        .collect()
}

/// Uniform POIs over the unit square (a structureless control dataset).
pub fn uniform_pois(size: usize, seed: u64) -> Vec<Poi> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..size)
        .map(|id| Poi::new(id as u32, Point::new(rng.gen(), rng.gen())))
        .collect()
}

/// Box–Muller Gaussian sample, resampled until it lands inside the
/// unit square (keeps the space exactly normalized).
fn clamped_gaussian<R: Rng>(rng: &mut R, cx: f64, cy: f64, sd: f64) -> Point {
    loop {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let mag = sd * (-2.0 * u1.ln()).sqrt();
        let p = Point::new(
            cx + mag * (2.0 * std::f64::consts::PI * u2).cos(),
            cy + mag * (2.0 * std::f64::consts::PI * u2).sin(),
        );
        if Rect::UNIT.contains(&p) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = sequoia_like(1000, 42);
        let b = sequoia_like(1000, 42);
        assert_eq!(a, b);
        let c = sequoia_like(1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn all_points_in_unit_square() {
        for poi in sequoia_like(5000, 1) {
            assert!(Rect::UNIT.contains(&poi.location), "{:?}", poi.location);
        }
    }

    #[test]
    fn ids_are_sequential() {
        let pois = sequoia_like(100, 2);
        for (i, poi) in pois.iter().enumerate() {
            assert_eq!(poi.id, i as u32);
        }
    }

    #[test]
    fn dataset_is_clustered_not_uniform() {
        // The densest 10% × 10% cell should hold far more than the uniform
        // expectation (1% of points).
        let pois = sequoia_like(20_000, 3);
        let mut cells = [[0u32; 10]; 10];
        for p in &pois {
            let cx = ((p.location.x * 10.0) as usize).min(9);
            let cy = ((p.location.y * 10.0) as usize).min(9);
            cells[cx][cy] += 1;
        }
        let max_cell = cells.iter().flatten().copied().max().unwrap();
        assert!(
            max_cell as f64 > 0.05 * pois.len() as f64,
            "densest cell holds {max_cell} of {} — not clustered enough",
            pois.len()
        );
    }

    #[test]
    fn uniform_is_not_clustered() {
        let pois = uniform_pois(20_000, 3);
        let mut cells = [[0u32; 10]; 10];
        for p in &pois {
            let cx = ((p.location.x * 10.0) as usize).min(9);
            let cy = ((p.location.y * 10.0) as usize).min(9);
            cells[cx][cy] += 1;
        }
        let max_cell = cells.iter().flatten().copied().max().unwrap();
        assert!(
            (max_cell as f64) < 0.03 * pois.len() as f64,
            "uniform data should have no cell above 3%"
        );
    }

    #[test]
    fn full_size_generation_is_fast_enough() {
        let pois = sequoia_like(SEQUOIA_SIZE, 7);
        assert_eq!(pois.len(), SEQUOIA_SIZE);
    }
}
