//! Head-to-head with the paper's baselines (§8.3.2): PPGNN vs IPPF vs
//! GLP on the same workload, plus a live demonstration of the attacks
//! that break the baselines' Privacy IV (Table 4).
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use ppgnn::baselines::attacks::{glp_centroid_attack, ippf_chain_attack};
use ppgnn::baselines::{Glp, Ippf};
use ppgnn::core::run_ppgnn_with_keys;
use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5150);
    let pois = ppgnn::datagen::sequoia_like(30_000, 2);
    let users: Vec<Point> = ppgnn::datagen::Workload::unit(17).next_group(6);
    let k = 8;

    println!("6 users, k = {k}, database of {} POIs\n", pois.len());
    println!(
        "{:<8} {:>12} {:>12} {:>12}   notes",
        "method", "comm KB", "user ms", "LSP ms"
    );

    // --- PPGNN.
    let keys = ppgnn::paillier::generate_keypair(512, &mut rng);
    let lsp = Lsp::new(
        pois.clone(),
        PpgnnConfig {
            k,
            keysize: 512,
            ..PpgnnConfig::paper_defaults()
        },
    );
    let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).expect("ppgnn");
    println!(
        "{:<8} {:>12.2} {:>12.1} {:>12.1}   exact answer, Privacy I–IV",
        "PPGNN",
        run.report.comm_kb(),
        run.report.user_cpu_secs * 1e3,
        run.report.lsp_cpu_secs * 1e3
    );

    // --- IPPF.
    let ippf = Ippf::new(pois.clone());
    let irun = ippf.query(&users, k, &mut rng);
    println!(
        "{:<8} {:>12.2} {:>12.1} {:>12.1}   exact, but {} candidate POIs leaked to users",
        "IPPF",
        irun.report.comm_kb(),
        irun.report.user_cpu_secs * 1e3,
        irun.report.lsp_cpu_secs * 1e3,
        irun.report.counters["candidate_pois"]
    );

    // --- GLP.
    let glp = Glp::new(pois.clone(), 512);
    let grun = glp.query(&users, k, None, &mut rng);
    println!(
        "{:<8} {:>12.2} {:>12.1} {:>12.1}   approximate (centroid kNN), LSP sees the answer",
        "GLP",
        grun.report.comm_kb(),
        grun.report.user_cpu_secs * 1e3,
        grun.report.lsp_cpu_secs * 1e3
    );

    // --- The attacks of Table 4.
    println!("\n── attacks ───────────────────────────────────────────────");

    // GLP: 5 colluders + the centroid recover user 0 exactly.
    let centroid = Point::centroid(&users);
    let recovered = glp_centroid_attack(centroid, &users[1..]);
    println!(
        "GLP centroid attack: recovered u0 at ({:.6}, {:.6}), true ({:.6}, {:.6}) — error {:.2e}",
        recovered.x,
        recovered.y,
        users[0].x,
        users[0].y,
        recovered.dist(&users[0])
    );

    // IPPF: predecessor+successor see dist(p, u1) for each candidate.
    let victim = users[1];
    let observed: Vec<(Point, f64)> = irun
        .answer
        .iter()
        .take(5)
        .map(|p| (*p, p.dist(&victim)))
        .collect();
    match ippf_chain_attack(&observed) {
        Some(r) => println!(
            "IPPF chain attack:   recovered u1 with error {:.2e}",
            r.dist(&victim)
        ),
        None => println!("IPPF chain attack:   degenerate candidate geometry this run"),
    }

    println!("PPGNN:               sanitation keeps every user's feasible region above θ0");
    println!("                     (see examples/collusion_attack.rs for the full demo)");
}
