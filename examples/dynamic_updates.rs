//! The dynamic-database story (§1): "our approach can easily handle a
//! dynamic database on LSP" — because nothing is pre-computed, an
//! insertion is visible to the very next private query. APNN, by
//! contrast, must recompute every affected grid cell.
//!
//! This walkthrough drives the live subsystem end to end: mutations go
//! through the versioned [`DynamicLsp`] (atomic batches, immutable
//! snapshots), a pinned snapshot proves isolation from later writes,
//! and the mutated index is checked answer-for-answer against an index
//! rebuilt from scratch.
//!
//! ```sh
//! cargo run --release --example dynamic_updates
//! ```

use ppgnn::baselines::Apnn;
use ppgnn::geo::PoiOp;
use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    let pois = ppgnn::datagen::sequoia_like(20_000, 3);

    // --- PPGNN on the versioned dynamic index.
    let config = PpgnnConfig {
        k: 3,
        d: 6,
        delta: 12,
        keysize: 512,
        ..PpgnnConfig::paper_defaults()
    };
    let dyn_lsp = DynamicLsp::new(pois.clone(), config.clone());
    let (stale, v1) = dyn_lsp.snapshot(); // pinned BEFORE the mutation

    // A restaurant opens right where the group wants to meet.
    let hotspot = Point::new(0.952, 0.047);
    let new_poi = Poi::new(999_999, hotspot);

    let t0 = std::time::Instant::now();
    let (changed, v2) = dyn_lsp.apply(&[PoiOp::Insert(new_poi)]);
    let ppgnn_update = t0.elapsed();
    assert_eq!(changed, 1);
    assert!(v2 > v1);

    let (lsp, _) = dyn_lsp.snapshot();
    let mut session = ppgnn::core::PpgnnSession::new(512, &mut rng);
    let users = vec![
        Point::new(0.950, 0.049),
        Point::new(0.954, 0.046),
        Point::new(0.951, 0.048),
    ];
    let run = session.query(&lsp, &users, &mut rng).expect("query");
    let found = run.answer.iter().any(|p| p.dist(&hotspot) < 1e-6);
    println!(
        "PPGNN:  insert took {:>10.1?} (version {v1} -> {v2}); \
         new POI in the very next private answer: {found}",
        ppgnn_update
    );
    assert!(found);

    // The snapshot pinned before the insert still answers from the old
    // world — in-flight queries never see a half-applied batch.
    let pinned = stale.plaintext_answer(&users, 1);
    assert!(
        pinned.iter().all(|p| p.location.dist(&hotspot) > 1e-6),
        "a pinned snapshot leaked a later mutation"
    );

    // The mutated index must agree, answer for answer, with an index
    // rebuilt from scratch over the same live POI set.
    let mut mirror = pois;
    mirror.push(new_poi);
    let rebuilt = Lsp::new(mirror, config);
    for k in [1usize, 3, 10] {
        let live: Vec<u32> = lsp
            .plaintext_answer(&users, k)
            .iter()
            .map(|p| p.id)
            .collect();
        let scratch: Vec<u32> = rebuilt
            .plaintext_answer(&users, k)
            .iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(live, scratch, "incremental index diverged at k={k}");
    }
    println!("PPGNN:  incremental index == rebuilt-from-scratch index (k = 1, 3, 10)");

    // --- APNN must recompute cells.
    let pois = ppgnn::datagen::sequoia_like(20_000, 3);
    let mut apnn = Apnn::build(pois, 50, 8, 512);
    let t0 = std::time::Instant::now();
    let cells = apnn.insert(new_poi);
    let apnn_update = t0.elapsed();
    println!(
        "APNN:   insert took {:>10.1?}; {cells} of 2500 pre-computed cells recomputed",
        apnn_update
    );
    println!(
        "\nPPGNN's {ppgnn_update:.1?} buys an *atomic, versioned* publish — in-flight \
         queries keep their pinned snapshot —"
    );
    println!("while APNN repaired {cells} cells of derived state, and a full database");
    println!("refresh would force it to rebuild all 2500; PPGNN's next query simply");
    println!("sees the new data.");
}
