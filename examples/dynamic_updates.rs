//! The dynamic-database story (§1): "our approach can easily handle a
//! dynamic database on LSP" — because nothing is pre-computed, an
//! insertion is visible to the very next private query. APNN, by
//! contrast, must recompute every affected grid cell.
//!
//! ```sh
//! cargo run --release --example dynamic_updates
//! ```

use ppgnn::baselines::Apnn;
use ppgnn::core::engine::DynamicMbmEngine;
use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    let pois = ppgnn::datagen::sequoia_like(20_000, 3);

    // --- PPGNN with a dynamic engine.
    let config = PpgnnConfig {
        k: 3,
        d: 6,
        delta: 12,
        keysize: 512,
        ..PpgnnConfig::paper_defaults()
    };
    let engine = DynamicMbmEngine::new(pois.clone());
    // A restaurant opens right where the group wants to meet.
    let hotspot = Point::new(0.952, 0.047);
    let new_poi = Poi::new(999_999, hotspot);

    let t0 = std::time::Instant::now();
    engine.insert(new_poi);
    let ppgnn_update = t0.elapsed();

    let lsp = Lsp::with_engine(Box::new(engine), config, Rect::UNIT);
    let mut session = ppgnn::core::PpgnnSession::new(512, &mut rng);
    let users = vec![
        Point::new(0.950, 0.049),
        Point::new(0.954, 0.046),
        Point::new(0.951, 0.048),
    ];
    let run = session.query(&lsp, &users, &mut rng).expect("query");
    let found = run.answer.iter().any(|p| p.dist(&hotspot) < 1e-6);
    println!(
        "PPGNN:  insert took {:>10.1?}; new POI in the very next private answer: {found}",
        ppgnn_update
    );
    assert!(found);

    // --- APNN must recompute cells.
    let mut apnn = Apnn::build(pois, 50, 8, 512);
    let t0 = std::time::Instant::now();
    let cells = apnn.insert(new_poi);
    let apnn_update = t0.elapsed();
    println!(
        "APNN:   insert took {:>10.1?}; {cells} of 2500 pre-computed cells recomputed",
        apnn_update
    );
    println!(
        "\nupdate cost ratio (APNN / PPGNN): {:.0}×",
        apnn_update.as_secs_f64() / ppgnn_update.as_secs_f64().max(1e-9)
    );
    println!("…and a full database refresh would force APNN to rebuild all cells,");
    println!("while PPGNN's next query simply sees the new data.");
}
