//! The black-box swap (§1): PPGNN's privacy layer works with *any* group
//! query. Here the kGNN engine is replaced with a meeting-location
//! determination (PPMLD [5, 16, 31]) engine: instead of the LSP's POI
//! database, the "answers" are the best among a set of *candidate venues
//! with capacity and opening constraints* — a different query semantics,
//! same privacy protocol, zero changes to the protocol code.
//!
//! ```sh
//! cargo run --release --example ppmld
//! ```

use ppgnn::core::engine::QueryEngine;
use ppgnn::prelude::*;
use rand::SeedableRng;

/// A venue that can host the meeting.
#[derive(Debug, Clone, Copy)]
struct Venue {
    poi: Poi,
    capacity: usize,
    open: bool,
}

/// A meeting-location determination engine: rank venues by aggregate
/// travel distance, but only venues that are open and large enough for
/// the whole group qualify.
struct MeetingLocationEngine {
    venues: Vec<Venue>,
}

impl QueryEngine for MeetingLocationEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        let group_size = query.len();
        let mut feasible: Vec<(f64, Poi)> = self
            .venues
            .iter()
            .filter(|v| v.open && v.capacity >= group_size)
            .map(|v| (agg.eval(&v.poi.location, query), v.poi))
            .collect();
        feasible.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        feasible.into_iter().take(k).map(|(_, p)| p).collect()
    }

    fn database_size(&self) -> usize {
        self.venues.len()
    }
}

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);

    // 200 venues with random capacities; a third are closed today.
    let venues: Vec<Venue> = ppgnn::datagen::sequoia_like(200, 9)
        .into_iter()
        .enumerate()
        .map(|(i, poi)| Venue {
            poi,
            capacity: 2 + (i * 7) % 12,
            open: i % 3 != 0,
        })
        .collect();
    let open_big = venues.iter().filter(|v| v.open && v.capacity >= 5).count();
    println!(
        "{} venues, {} open with capacity ≥ 5",
        venues.len(),
        open_big
    );

    let config = PpgnnConfig {
        k: 3,
        d: 8,
        delta: 30,
        keysize: 512,
        aggregate: Aggregate::Max, // minimize the *latest* arrival
        ..PpgnnConfig::paper_defaults()
    };
    // The swap: hand the protocol a PPMLD engine instead of kGNN.
    let lsp = Lsp::with_engine(
        Box::new(MeetingLocationEngine { venues }),
        config,
        Rect::UNIT,
    );

    let team: Vec<Point> = ppgnn::datagen::Workload::unit(31).next_group(5);
    let run = run_ppgnn(&lsp, &team, &mut rng).expect("protocol run");

    println!("\nBest meeting venues for the 5-person team (max-distance metric):");
    for (rank, p) in run.answer.iter().enumerate() {
        println!("  #{}  venue at ({:.4}, {:.4})", rank + 1, p.x, p.y);
    }
    println!("\nThe same four privacy guarantees hold: LSP never saw a location,");
    println!("the team only learned the requested venues, and no subgroup of 4");
    println!("can pin down the fifth member — with kGNN swapped out entirely.");

    let plain = lsp.plaintext_answer(&team, 3);
    for (got, want) in run.answer.iter().zip(&plain) {
        assert!(got.dist(&want.location) < 1e-6);
    }
    println!("✓ private answer equals the plaintext PPMLD answer");
}
