//! Road-network distance (Definition 2.1 cites road-network `dis` [38]):
//! the privacy protocol is metric-agnostic because the LSP's query
//! answering is a black box. Here the black box computes group-kNN over a
//! synthetic street grid via Dijkstra instead of Euclidean distance.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use ppgnn::core::engine::QueryEngine;
use ppgnn::geo::RoadNetwork;
use ppgnn::prelude::*;
use rand::SeedableRng;

/// A kGNN engine that measures distance along the road network.
struct RoadGnnEngine {
    network: RoadNetwork,
    pois: Vec<Poi>,
}

impl QueryEngine for RoadGnnEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        self.network.group_knn(&self.pois, query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.pois.len()
    }
}

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(88);

    // A 20×20 street grid and 2 000 POIs scattered over it.
    let network = RoadNetwork::grid(20, 20, 0.01, 4);
    let pois = ppgnn::datagen::sequoia_like(2_000, 5);
    println!(
        "street grid: {} intersections, {} road segments; {} POIs",
        network.node_count(),
        network.edge_count(),
        pois.len()
    );

    let config = PpgnnConfig {
        k: 4,
        d: 8,
        delta: 30,
        keysize: 512,
        ..PpgnnConfig::paper_defaults()
    };
    let road_lsp = Lsp::with_engine(
        Box::new(RoadGnnEngine {
            network: network.clone(),
            pois: pois.clone(),
        }),
        config.clone(),
        Rect::UNIT,
    );
    let euclid_lsp = Lsp::new(pois.clone(), config);

    let users: Vec<Point> = ppgnn::datagen::Workload::unit(21).next_group(4);
    let keys = ppgnn::paillier::generate_keypair(512, &mut rng);

    let road_run =
        ppgnn::core::run_ppgnn_with_keys(&road_lsp, &users, Some(&keys), &mut rng).expect("road");
    let euclid_run = ppgnn::core::run_ppgnn_with_keys(&euclid_lsp, &users, Some(&keys), &mut rng)
        .expect("euclid");

    println!("\nTop meeting places by ROAD distance:");
    for (i, p) in road_run.answer.iter().enumerate() {
        println!("  #{} ({:.4}, {:.4})", i + 1, p.x, p.y);
    }
    println!("Top meeting places by EUCLIDEAN distance:");
    for (i, p) in euclid_run.answer.iter().enumerate() {
        println!("  #{} ({:.4}, {:.4})", i + 1, p.x, p.y);
    }

    // Verify against the plaintext road oracle.
    let expected = road_lsp.plaintext_answer(&users, 4);
    for (got, want) in road_run.answer.iter().zip(&expected) {
        assert!(got.dist(&want.location) < 1e-6);
    }
    println!("\n✓ private road-distance answer equals the plaintext road kGNN");
    println!("  (the four privacy guarantees are metric-independent)");
}
