//! Full user collusion in action (§5): n − 1 users attack the remaining
//! one with the inequality attack, against both the unsanitized protocol
//! (PPGNN-NAS) and the sanitized one (PPGNN).
//!
//! ```sh
//! cargo run --release --example collusion_attack
//! ```

use ppgnn::core::attack::feasible_region_fraction;
use ppgnn::core::run_ppgnn_with_keys;
use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
    let pois = ppgnn::datagen::sequoia_like(20_000, 3);
    let keys = ppgnn::paillier::generate_keypair(512, &mut rng);
    let theta0 = 0.05;

    let users: Vec<Point> = ppgnn::datagen::Workload::unit(5).next_group(4);
    println!(
        "group: {} users, θ0 = {theta0} (each user must stay hidden in",
        users.len()
    );
    println!(
        "≥ {:.0}% of the space even if the other {} collude)\n",
        theta0 * 100.0,
        users.len() - 1
    );

    for (name, sanitize) in [
        ("PPGNN-NAS (no sanitation)", false),
        ("PPGNN (sanitized)", true),
    ] {
        let config = PpgnnConfig {
            keysize: 512,
            k: 16,
            sanitize,
            theta0,
            ..PpgnnConfig::paper_defaults()
        };
        let lsp = Lsp::new(pois.clone(), config);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).expect("run");

        // The colluders attack every possible target with the ranked
        // answer they received.
        let answer_pois: Vec<Poi> = run
            .answer
            .iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, *p))
            .collect();
        println!("{name}: {} POIs returned", run.pois_returned);
        let mut exposed = 0;
        for target in 0..users.len() {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let theta = feasible_region_fraction(
                &answer_pois,
                &colluders,
                Aggregate::Sum,
                &Rect::UNIT,
                50_000,
                &mut rng,
            );
            let verdict = if theta <= theta0 {
                exposed += 1;
                "EXPOSED"
            } else {
                "safe"
            };
            println!(
                "  target u{target}: feasible region = {:>5.1}% of space  -> {verdict}",
                theta * 100.0
            );
        }
        println!(
            "  attack {} against {}\n",
            if exposed > 0 { "SUCCEEDED" } else { "failed" },
            name
        );
    }

    println!("The sanitized protocol returns a shorter ranked prefix, keeping");
    println!("every user's feasible region above θ0 — Privacy IV holds under");
    println!("full user collusion (Theorem 5.2).");
}
