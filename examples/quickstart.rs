//! Quickstart: three users privately retrieve their top-3 meeting places.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);

    // The LSP's database: a synthetic city with 5 000 POIs.
    let pois = ppgnn::datagen::sequoia_like(5_000, 1);

    // Protocol parameters (see the paper's Table 3):
    //   k = 3 meeting places, d = 10 dummies per user, δ = 40 candidate
    //   queries, θ0 = 0.05 minimum hidden-region fraction.
    let config = PpgnnConfig {
        k: 3,
        d: 10,
        delta: 40,
        theta0: 0.05,
        keysize: 512,
        ..PpgnnConfig::paper_defaults()
    };
    let lsp = Lsp::new(pois, config);

    // Three mobile users who never reveal their locations — not to the
    // LSP, and not to each other.
    let users = vec![
        Point::new(0.21, 0.74), // Alice
        Point::new(0.25, 0.71), // Bob
        Point::new(0.18, 0.69), // Carol
    ];

    let run = run_ppgnn(&lsp, &users, &mut rng).expect("protocol run");

    println!("Top meeting places (best first):");
    for (rank, p) in run.answer.iter().enumerate() {
        println!("  #{}  ({:.4}, {:.4})", rank + 1, p.x, p.y);
    }
    println!();
    println!("Privacy bill for this query:");
    println!(
        "  candidate queries evaluated by LSP (δ'): {}",
        run.delta_prime
    );
    println!(
        "  POIs returned after sanitation:          {}",
        run.pois_returned
    );
    println!("  total communication:  {:.2} KB", run.report.comm_kb());
    println!(
        "  user CPU (all users): {:.1} ms",
        run.report.user_cpu_secs * 1e3
    );
    println!(
        "  LSP CPU:              {:.1} ms",
        run.report.lsp_cpu_secs * 1e3
    );

    // Sanity: the privacy-preserving answer equals the plaintext answer.
    let plain = lsp.plaintext_answer(&users, 3);
    for (got, want) in run.answer.iter().zip(&plain) {
        assert!(got.dist(&want.location) < 1e-6);
    }
    println!("\n✓ answer matches the plaintext kGNN exactly");
}
