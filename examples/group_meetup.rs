//! A paper-scale group scenario: 8 users over the full 62 556-POI
//! synthetic Sequoia dataset, comparing the three protocol variants
//! (PPGNN, PPGNN-OPT, Naive) on the same query.
//!
//! ```sh
//! cargo run --release --example group_meetup
//! ```

use ppgnn::core::{run_ppgnn_with_keys, Variant};
use ppgnn::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    println!("building the synthetic Sequoia dataset (62 556 POIs)...");
    let pois = ppgnn::datagen::sequoia_like(ppgnn::datagen::SEQUOIA_SIZE, 1);

    // One keypair shared across the three runs so costs are comparable.
    let keys = ppgnn::paillier::generate_keypair(512, &mut rng);

    let users: Vec<Point> = ppgnn::datagen::Workload::unit(99).next_group(8);
    println!("group of {} users issues a k=8 query\n", users.len());

    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>6}",
        "variant", "δ'", "comm KB", "user ms", "LSP ms", "POIs"
    );
    for variant in [Variant::Plain, Variant::Opt, Variant::Naive] {
        let config = PpgnnConfig {
            keysize: 512,
            variant,
            ..PpgnnConfig::paper_defaults()
        };
        let lsp = Lsp::new(pois.clone(), config);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).expect("run");
        println!(
            "{:<10} {:>8} {:>12.2} {:>12.1} {:>12.1} {:>6}",
            match variant {
                Variant::Plain => "PPGNN",
                Variant::Opt => "PPGNN-OPT",
                Variant::Naive => "Naive",
            },
            run.delta_prime,
            run.report.comm_kb(),
            run.report.user_cpu_secs * 1e3,
            run.report.lsp_cpu_secs * 1e3,
            run.pois_returned,
        );
    }

    println!("\nExpected shape (paper §8.3): PPGNN-OPT < PPGNN < Naive on");
    println!("communication and user cost; LSP cost is dominated by answer");
    println!("sanitation and is nearly identical across the three variants.");
}
