//! Redaction golden test: run a fully traced group query over TCP with
//! deliberately distinctive coordinates and POI ids, then prove none of
//! that private data survives into any trace export face — the kept
//! segments, the Chrome `trace_event` JSON, or the slow-query log.
//!
//! The tracer's schema makes leaks structurally hard (span names and
//! attribute keys are closed enums, values are bare `u64` counts), so
//! this test pins the contract from the outside: exports must be
//! float-free (coordinates and distances are the only floats in the
//! pipeline) and every name must come from the fixed allowlist.

use std::sync::Arc;

use ppgnn::prelude::*;
use ppgnn::telemetry::trace::{
    self, chrome_trace_json, slow_log_line, AttrKey, SegmentOrigin, SpanName, TracerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Every span name the schema can emit. A new variant must be added
/// here deliberately, which is the moment to ask "can it leak?".
const SPAN_ALLOWLIST: &[&str] = &[
    "client-query",
    "client-plan",
    "client-encode",
    "wire-encode",
    "wire-decode",
    "server-query",
    "validate",
    "candidate-eval",
    "paillier-encrypt",
    "paillier-dot",
    "paillier-decrypt",
    "private-selection",
    "sanitation",
    "sanitation-prefix",
];

/// Coordinates no duration or count will ever collide with, and POI
/// ids far above any count attribute this run can produce.
const HOT_COORDS: [f64; 4] = [0.123456789, 0.987654321, 0.314159265, 0.271828182];
const POI_ID_BASE: u32 = 900_000_000;

fn assert_float_free(export: &str, face: &str) {
    let bytes = export.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' {
            assert!(
                !(bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()),
                "{face} contains a float-shaped token near byte {i}: {:?}",
                &export[i.saturating_sub(20)..(i + 20).min(export.len())]
            );
        }
    }
    for c in &HOT_COORDS {
        let s = format!("{c}");
        assert!(!export.contains(&s), "{face} leaks coordinate {s}");
    }
}

#[test]
fn exported_traces_carry_no_location_or_identifier_data() {
    trace::global().configure(&TracerConfig {
        enabled: true,
        slow_us: 0, // everything is "slow": tail sampling keeps it all
        keep_permille: 1000,
        ..TracerConfig::default()
    });

    let config = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: true,
        ..PpgnnConfig::fast_test()
    };
    // A 6x6 grid of POIs whose ids and coordinates are unmistakable if
    // they ever show up in an export.
    let pois: Vec<Poi> = (0..36)
        .map(|i| {
            Poi::new(
                POI_ID_BASE + i,
                Point::new(
                    HOT_COORDS[i as usize % 4] * 0.9 + (i % 6) as f64 * 0.016,
                    HOT_COORDS[(i as usize + 1) % 4] * 0.9 + (i / 6) as f64 * 0.016,
                ),
            )
        })
        .collect();
    let lsp = Arc::new(Lsp::new(pois, config.clone()));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a);
    let mut client = GroupClient::connect(handle.local_addr(), 7, config, lsp.space(), 3, &mut rng)
        .expect("connect");
    for q in 0..3 {
        let users = vec![
            Point::new(HOT_COORDS[q % 4], HOT_COORDS[(q + 1) % 4]),
            Point::new(HOT_COORDS[(q + 2) % 4], HOT_COORDS[(q + 3) % 4]),
            Point::new(HOT_COORDS[q % 4] * 0.5, 0.123456789),
        ];
        client.query(&users, &mut rng).expect("traced query");
    }
    client.goodbye();
    handle.shutdown();

    let segments = trace::global().segments();
    assert!(!segments.is_empty(), "tracer kept nothing");
    assert!(
        segments
            .iter()
            .any(|s| s.origin == SegmentOrigin::Client && s.trace_id != 0),
        "no client segment kept"
    );
    assert!(
        segments.iter().any(|s| s.origin == SegmentOrigin::Server),
        "no server segment kept"
    );

    // Structural allowlist: every span name and attribute key in every
    // kept segment is one of the closed-schema strings, and every
    // attribute value is a small count — never a 9-digit POI id.
    for seg in &segments {
        for span in &seg.spans {
            assert!(
                SPAN_ALLOWLIST.contains(&span.name.name()),
                "span name {:?} not in redaction allowlist",
                span.name.name()
            );
            for &(key, value) in &span.attrs {
                assert!(
                    AttrKey::ALL.contains(&key),
                    "attr key {key:?} not in the closed schema"
                );
                assert!(
                    value < u64::from(POI_ID_BASE),
                    "attr {}={value} is large enough to be an identifier",
                    key.name()
                );
            }
        }
    }
    // The sanitation path really ran (its spans are the likeliest place
    // for per-candidate data to sneak in).
    assert!(
        segments.iter().any(|s| s
            .spans
            .iter()
            .any(|sp| sp.name == SpanName::SanitationPrefix)),
        "sanitized query produced no sanitation-prefix spans"
    );

    // Golden checks on both text export faces: no float-shaped tokens
    // (coordinates and plaintext distances are the only floats in the
    // system) and none of the distinctive inputs.
    let chrome = chrome_trace_json(&segments);
    assert_float_free(&chrome, "chrome trace JSON");
    for seg in &segments {
        assert_float_free(&slow_log_line(seg), "slow-query log line");
    }
}
