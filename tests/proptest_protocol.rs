//! Property-based tests over the protocol machinery: partition solver,
//! candidate-list/query-index agreement, spatial index vs oracle, answer
//! codec, and sanitation invariants.

use ppgnn::core::candidate::{candidate_queries, query_index};
use ppgnn::core::encoding::AnswerCodec;
use ppgnn::core::params::HypothesisConfig;
use ppgnn::core::partition::{solve_partition, solve_partition_oracle, PartitionParams};
use ppgnn::core::sanitize::Sanitizer;
use ppgnn::geo::{group_knn_brute_force, knn_brute_force, RTree};
use ppgnn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rand::Rng::gen(&mut rng), rand::Rng::gen(&mut rng)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solver is feasible and optimal (vs the exhaustive oracle) on
    /// every small instance.
    #[test]
    fn partition_solver_feasible_and_optimal(n in 1usize..=5, d in 2usize..=9, mult in 1usize..=4) {
        let delta = d * mult;
        match (solve_partition(n, d, delta), solve_partition_oracle(n, d, delta)) {
            (Ok(p), Some((best, _))) => {
                prop_assert_eq!(p.segment_sizes.iter().sum::<usize>(), d);
                prop_assert_eq!(p.subgroup_sizes.iter().sum::<usize>(), n);
                prop_assert!(p.delta_prime() >= delta as u128);
                prop_assert_eq!(p.delta_prime(), best);
            }
            (Err(_), None) => {} // both infeasible
            (got, oracle) => prop_assert!(false, "disagreement: {got:?} vs {oracle:?}"),
        }
    }

    /// For every (segment, positions) choice, the candidate at the
    /// Eqn-12 index is exactly the query assembled from those positions.
    #[test]
    fn query_index_agrees_with_candidate_list(
        n in 1usize..=5,
        seg_sizes in prop::collection::vec(1usize..=3, 1..=3),
        alpha_seed in any::<u64>(),
    ) {
        let d: usize = seg_sizes.iter().sum();
        let mut rng = ChaCha8Rng::seed_from_u64(alpha_seed);
        let alpha = 1 + (rand::Rng::gen_range(&mut rng, 0..n));
        let mut subgroup_sizes = vec![n / alpha; alpha];
        for s in subgroup_sizes.iter_mut().take(n % alpha) { *s += 1; }
        prop_assume!(subgroup_sizes.iter().all(|&s| s >= 1));
        let params = PartitionParams { subgroup_sizes, segment_sizes: seg_sizes.clone() };

        // Encode slots as Point(user, slot).
        let sets: Vec<Vec<Point>> = (0..n)
            .map(|u| (0..d).map(|j| Point::new(u as f64, j as f64)).collect())
            .collect();
        let cands = candidate_queries(&sets, &params).unwrap();
        prop_assert_eq!(cands.len() as u128, params.delta_prime());

        for seg in 0..params.beta() {
            let size = params.segment_sizes[seg];
            let offset = params.segment_offset(seg);
            // Try a handful of position tuples per segment.
            for trial in 0..3u64 {
                let mut trng = ChaCha8Rng::seed_from_u64(alpha_seed ^ trial);
                let x: Vec<usize> = (0..params.alpha())
                    .map(|_| rand::Rng::gen_range(&mut trng, 0..size))
                    .collect();
                let qi = query_index(&params, seg, &x);
                let expected: Vec<Point> = (0..n)
                    .map(|u| sets[u][offset + x[params.subgroup_of(u)]])
                    .collect();
                prop_assert_eq!(&cands[qi], &expected);
            }
        }
    }

    /// R-tree kNN equals the brute-force oracle on random data.
    #[test]
    fn rtree_knn_matches_oracle(seed in any::<u64>(), k in 1usize..=20) {
        let pts = points(120, seed);
        let pois: Vec<Poi> = pts.iter().enumerate().map(|(i, p)| Poi::new(i as u32, *p)).collect();
        let tree = RTree::bulk_load(pois.clone());
        let q = Point::new(0.5, 0.5);
        let got: Vec<u32> = tree.knn(&q, k).iter().map(|p| p.id).collect();
        let want: Vec<u32> = knn_brute_force(&pois, &q, k).iter().map(|p| p.id).collect();
        prop_assert_eq!(got, want);
    }

    /// MBM group-kNN equals the brute-force oracle for every aggregate.
    #[test]
    fn mbm_matches_oracle(seed in any::<u64>(), n in 1usize..=5, agg_idx in 0usize..3) {
        let agg = Aggregate::ALL[agg_idx];
        let pts = points(100, seed);
        let pois: Vec<Poi> = pts.iter().enumerate().map(|(i, p)| Poi::new(i as u32, *p)).collect();
        let tree = RTree::bulk_load(pois.clone());
        let queries = points(n, seed ^ 0xABCD);
        let got: Vec<u32> = tree.group_knn(&queries, 7, agg).iter().map(|p| p.id).collect();
        let want: Vec<u32> = group_knn_brute_force(&pois, &queries, 7, agg)
            .iter().map(|p| p.id).collect();
        prop_assert_eq!(got, want);
    }

    /// The answer codec roundtrips any truncation length.
    #[test]
    fn codec_roundtrips(seed in any::<u64>(), k in 1usize..=12, len_frac in 0.0f64..=1.0) {
        let codec = AnswerCodec::new(256, 1, k);
        let len = ((k as f64) * len_frac) as usize;
        let pts = points(len, seed);
        let pois: Vec<Poi> = pts.iter().enumerate().map(|(i, p)| Poi::new(i as u32, *p)).collect();
        let decoded = codec.decode(&codec.encode(&pois)).unwrap();
        prop_assert_eq!(decoded.len(), len);
        for (d, p) in decoded.iter().zip(&pts) {
            prop_assert!(d.dist(p) < 1e-8);
        }
    }

    /// Sanitation always returns 1 ≤ t ≤ len for groups, exactly len for
    /// singletons and empty answers.
    #[test]
    fn sanitizer_prefix_bounds(seed in any::<u64>(), n in 2usize..=5, len in 2usize..=10) {
        let users = points(n, seed);
        let pts = points(len, seed ^ 0x55);
        let mut pois: Vec<Poi> = pts.iter().enumerate().map(|(i, p)| Poi::new(i as u32, *p)).collect();
        pois.sort_by(|a, b| {
            Aggregate::Sum.eval(&a.location, &users)
                .total_cmp(&Aggregate::Sum.eval(&b.location, &users))
        });
        // Loose confidence settings keep the sample count small and fast.
        let hyp = HypothesisConfig { gamma: 0.1, eta: 0.3, phi: 0.5 };
        let sanitizer = Sanitizer::new(0.05, &hyp, Rect::UNIT);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = sanitizer.safe_prefix_len(&pois, &users, Aggregate::Sum, &mut rng);
        prop_assert!(t >= 1, "the top-1 prefix is always safe");
        prop_assert!(t <= pois.len());
    }

    /// Range query equals a filter scan.
    #[test]
    fn rtree_range_matches_filter(seed in any::<u64>(),
                                  x0 in 0.0f64..0.8, y0 in 0.0f64..0.8,
                                  w in 0.05f64..0.4, h in 0.05f64..0.4) {
        let pts = points(150, seed);
        let pois: Vec<Poi> = pts.iter().enumerate().map(|(i, p)| Poi::new(i as u32, *p)).collect();
        let tree = RTree::bulk_load(pois.clone());
        let rect = Rect::new(x0, y0, x0 + w, y0 + h);
        let got: Vec<u32> = tree.range(&rect).iter().map(|p| p.id).collect();
        let mut want: Vec<u32> = pois.iter()
            .filter(|p| rect.contains(&p.location))
            .map(|p| p.id).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
