//! Wire-level end-to-end test: every protocol message crosses a real
//! byte boundary (serialize → deserialize) between the parties, proving
//! the in-memory simulation and the cost model correspond to an actual
//! network protocol.

use ppgnn::core::candidate::query_index;
use ppgnn::core::encoding::AnswerCodec;
use ppgnn::core::messages::{AnswerMessage, IndicatorPayload, LocationSetMessage, QueryMessage};
use ppgnn::core::opt_split;
use ppgnn::core::partition::solve_partition;
use ppgnn::core::wire::WireContext;
use ppgnn::prelude::*;
use ppgnn::sim::CostLedger;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn grid_db(side: u32) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i,
                Point::new(
                    (i % side) as f64 / side as f64,
                    (i / side) as f64 / side as f64,
                ),
            )
        })
        .collect()
}

/// Runs the full protocol manually with every message passing through
/// its wire encoding, for both Plain and Opt indicator layouts.
fn run_over_the_wire(two_phase: bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(if two_phase { 2 } else { 1 });
    let cfg = PpgnnConfig {
        k: 3,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(grid_db(10), cfg.clone());
    let users = vec![
        Point::new(0.2, 0.3),
        Point::new(0.4, 0.2),
        Point::new(0.3, 0.5),
    ];
    let n = users.len();

    // --- Coordinator side.
    let (pk, sk) = ppgnn::paillier::generate_keypair(cfg.keysize, &mut rng);
    let params = solve_partition(n, cfg.d, cfg.delta).unwrap();
    let delta_prime = params.delta_prime() as usize;
    let seg = 0usize;
    let x: Vec<usize> = (0..params.alpha())
        .map(|_| rng.gen_range(0..params.segment_sizes[seg]))
        .collect();
    let qi = query_index(&params, seg, &x);
    let positions: Vec<usize> = (0..n)
        .map(|u| params.segment_offset(seg) + x[params.subgroup_of(u)])
        .collect();

    let ctx1 = ppgnn::paillier::DjContext::new(&pk, 1);
    let indicator = if two_phase {
        let (omega, block) = opt_split(delta_prime);
        let ctx2 = ppgnn::paillier::DjContext::new(&pk, 2);
        IndicatorPayload::TwoPhase {
            inner: encrypt_indicator(block, qi % block, &ctx1, &mut rng),
            outer: encrypt_indicator(omega, qi / block, &ctx2, &mut rng),
        }
    } else {
        IndicatorPayload::Plain(encrypt_indicator(delta_prime, qi, &ctx1, &mut rng))
    };
    let query = QueryMessage {
        k: cfg.k,
        pk: pk.clone(),
        partition: Some(params),
        indicator,
        theta0: cfg.theta0,
    };

    // === WIRE: coordinator -> LSP ===
    let query_bytes = query.to_wire();
    assert_eq!(query_bytes.len(), query.byte_len());
    let wire_ctx = WireContext {
        key_bits: cfg.keysize,
        two_phase_omega: two_phase.then(|| opt_split(delta_prime).0),
        has_partition: true,
    };
    let query_rx = QueryMessage::from_wire(&query_bytes, &wire_ctx).unwrap();

    // --- Users build and "send" their location sets over the wire.
    let mut sets_rx = Vec::new();
    for (u, (&real, &pos)) in users.iter().zip(&positions).enumerate() {
        let mut locations: Vec<Point> = (0..cfg.d - 1)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        locations.insert(pos, real);
        let msg = LocationSetMessage {
            user_index: u,
            locations,
        };
        let bytes = msg.to_wire();
        assert_eq!(bytes.len(), msg.byte_len());
        sets_rx.push(LocationSetMessage::from_wire(&bytes).unwrap());
    }

    // --- LSP processes the *deserialized* messages.
    let mut ledger = CostLedger::new();
    let answer = lsp
        .process_query(&query_rx, &sets_rx, &mut ledger, &mut rng)
        .unwrap();

    // === WIRE: LSP -> coordinator ===
    let answer_bytes = answer.to_wire(&pk);
    assert_eq!(answer_bytes.len(), answer.byte_len(&pk));
    let answer_rx = AnswerMessage::from_wire(&answer_bytes, &pk, two_phase).unwrap();

    // --- Coordinator decrypts.
    let codec = AnswerCodec::new(pk.key_bits(), 1, cfg.k);
    let decoded = match &answer_rx {
        AnswerMessage::Plain(enc) => codec
            .decode(&ppgnn::paillier::decrypt_vector(enc, &ctx1, &sk))
            .unwrap(),
        AnswerMessage::TwoPhase(enc) => {
            let ctx2 = ppgnn::paillier::DjContext::new(&pk, 2);
            let inner: Vec<_> = enc
                .elements()
                .iter()
                .map(|c| {
                    let v = ctx2.decrypt(c, &sk);
                    ctx1.decrypt(&ppgnn::paillier::Ciphertext::from_parts(v, 1), &sk)
                })
                .collect();
            codec.decode(&inner).unwrap()
        }
    };

    let expected = lsp.plaintext_answer(&users, cfg.k);
    assert_eq!(decoded.len(), cfg.k);
    for (got, want) in decoded.iter().zip(&expected) {
        assert!(got.dist(&want.location) < 1e-6, "two_phase={two_phase}");
    }
}

#[test]
fn plain_protocol_over_the_wire() {
    run_over_the_wire(false);
}

#[test]
fn two_phase_protocol_over_the_wire() {
    run_over_the_wire(true);
}

/// Same call shape as the retired free function, built on the unified
/// `Encryptor` API.
fn encrypt_indicator<R: rand::Rng + ?Sized>(
    len: usize,
    pos: usize,
    ctx: &ppgnn::paillier::DjContext,
    rng: &mut R,
) -> ppgnn::paillier::EncryptedVector {
    use ppgnn::paillier::{Encryptor, FreshEncryptor};
    use rand::SeedableRng;
    FreshEncryptor::with_rng(ctx.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()))
        .encrypt_indicator(len, pos)
        .unwrap()
}
