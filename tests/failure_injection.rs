//! Failure injection: malformed inputs, protocol misuse, and boundary
//! configurations must fail loudly (typed errors or panics) rather than
//! silently degrade privacy or correctness.

use ppgnn::core::encoding::AnswerCodec;
use ppgnn::core::messages::{IndicatorPayload, LocationSetMessage, QueryMessage};
use ppgnn::core::{run_ppgnn, PpgnnError};
use ppgnn::prelude::*;
use ppgnn::sim::CostLedger;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_db() -> Vec<Poi> {
    (0..100)
        .map(|i| {
            Poi::new(
                i,
                Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0),
            )
        })
        .collect()
}

fn lax_config() -> PpgnnConfig {
    PpgnnConfig {
        k: 3,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    }
}

#[test]
fn delta_above_d_pow_n_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let cfg = PpgnnConfig {
        d: 3,
        delta: 100,
        ..lax_config()
    };
    let lsp = Lsp::new(small_db(), cfg);
    let users = vec![Point::ORIGIN, Point::new(0.5, 0.5)]; // 3^2 = 9 < 100
    let err = run_ppgnn(&lsp, &users, &mut rng).unwrap_err();
    assert!(matches!(
        err,
        PpgnnError::DeltaUnreachable {
            delta: 100,
            d: 3,
            n: 2
        }
    ));
    assert!(err.to_string().contains("larger d"));
}

#[test]
fn empty_group_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let lsp = Lsp::new(small_db(), lax_config());
    assert!(matches!(
        run_ppgnn(&lsp, &[], &mut rng),
        Err(PpgnnError::InvalidConfig(_))
    ));
}

#[test]
fn wrong_size_location_set_rejected_by_lsp() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let lsp = Lsp::new(small_db(), lax_config());
    let (pk, _sk) = ppgnn::paillier::generate_keypair(128, &mut rng);
    let ctx = ppgnn::paillier::DjContext::new(&pk, 1);
    let params = ppgnn::core::partition::solve_partition(2, 4, 8).unwrap();
    let dp = params.delta_prime() as usize;
    let query = QueryMessage {
        k: 3,
        pk,
        partition: Some(params),
        indicator: IndicatorPayload::Plain(encrypt_indicator(dp, 0, &ctx, &mut rng)),
        theta0: 0.05,
    };
    // User 1 sends 3 locations instead of d = 4.
    let sets = vec![
        LocationSetMessage {
            user_index: 0,
            locations: vec![Point::ORIGIN; 4],
        },
        LocationSetMessage {
            user_index: 1,
            locations: vec![Point::ORIGIN; 3],
        },
    ];
    let mut ledger = CostLedger::new();
    assert!(matches!(
        lsp.process_query(&query, &sets, &mut ledger, &mut rng),
        Err(PpgnnError::BadLocationSet {
            user: 1,
            expected: 4,
            got: 3
        })
    ));
}

#[test]
fn indicator_too_short_for_two_phase_grid() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let lsp = Lsp::new(small_db(), lax_config());
    let (pk, _sk) = ppgnn::paillier::generate_keypair(128, &mut rng);
    let ctx1 = ppgnn::paillier::DjContext::new(&pk, 1);
    let ctx2 = ppgnn::paillier::DjContext::new(&pk, 2);
    let params = ppgnn::core::partition::solve_partition(2, 4, 8).unwrap();
    // 2×2 grid covers 4 < δ' = 8 columns: must be rejected.
    let query = QueryMessage {
        k: 3,
        pk,
        partition: Some(params),
        indicator: IndicatorPayload::TwoPhase {
            inner: encrypt_indicator(2, 0, &ctx1, &mut rng),
            outer: encrypt_indicator(2, 0, &ctx2, &mut rng),
        },
        theta0: 0.05,
    };
    let sets: Vec<LocationSetMessage> = (0..2)
        .map(|i| LocationSetMessage {
            user_index: i,
            locations: vec![Point::ORIGIN; 4],
        })
        .collect();
    let mut ledger = CostLedger::new();
    assert!(matches!(
        lsp.process_query(&query, &sets, &mut ledger, &mut rng),
        Err(PpgnnError::BadIndicator { .. })
    ));
}

#[test]
fn corrupt_answer_column_detected() {
    let codec = AnswerCodec::new(128, 1, 4);
    // A count header claiming more POIs than k.
    let mut col = codec.encode(&[Poi::new(0, Point::new(0.5, 0.5))]);
    col[0] = ppgnn::bigint::BigUint::from(77u64); // count = 77 > 4
    assert!(matches!(
        codec.decode(&col),
        Err(PpgnnError::BadAnswerEncoding(_))
    ));
}

#[test]
fn config_validation_catches_every_bad_field() {
    let good = lax_config();
    good.validate(2).unwrap();

    let cases: Vec<(&str, PpgnnConfig)> = vec![
        (
            "k=0",
            PpgnnConfig {
                k: 0,
                ..good.clone()
            },
        ),
        (
            "d=1",
            PpgnnConfig {
                d: 1,
                delta: 1,
                ..good.clone()
            },
        ),
        (
            "delta<d",
            PpgnnConfig {
                delta: 3,
                ..good.clone()
            },
        ),
        (
            "theta0=0",
            PpgnnConfig {
                theta0: 0.0,
                ..good.clone()
            },
        ),
        (
            "theta0>1",
            PpgnnConfig {
                theta0: 1.1,
                ..good.clone()
            },
        ),
        (
            "tiny key",
            PpgnnConfig {
                keysize: 64,
                ..good.clone()
            },
        ),
        (
            "gamma=0.9",
            PpgnnConfig {
                hypothesis: ppgnn::core::params::HypothesisConfig {
                    gamma: 0.9,
                    ..Default::default()
                },
                ..good.clone()
            },
        ),
    ];
    for (name, cfg) in cases {
        assert!(cfg.validate(2).is_err(), "{name} must be rejected");
    }
}

#[test]
fn empty_database_yields_empty_answers() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let lsp = Lsp::new(vec![], lax_config());
    let users = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.6)];
    let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
    assert!(run.answer.is_empty());
    assert_eq!(run.pois_returned, 0);
}

#[test]
fn database_smaller_than_k() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let pois = vec![
        Poi::new(0, Point::new(0.4, 0.4)),
        Poi::new(1, Point::new(0.6, 0.6)),
    ];
    let lsp = Lsp::new(pois, lax_config()); // k = 3 > 2 POIs
    let users = vec![Point::new(0.5, 0.5), Point::new(0.55, 0.5)];
    let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
    assert_eq!(run.answer.len(), 2, "answers capped at |D|");
}

#[test]
fn mismatched_indicator_vs_naive_columns() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let lsp = Lsp::new(small_db(), lax_config());
    let (pk, _sk) = ppgnn::paillier::generate_keypair(128, &mut rng);
    let ctx = ppgnn::paillier::DjContext::new(&pk, 1);
    let query = QueryMessage {
        k: 3,
        pk,
        partition: None, // Naive: columns = location-set length = 5
        indicator: IndicatorPayload::Plain(encrypt_indicator(9, 0, &ctx, &mut rng)),
        theta0: 0.05,
    };
    let sets = vec![LocationSetMessage {
        user_index: 0,
        locations: vec![Point::ORIGIN; 5],
    }];
    let mut ledger = CostLedger::new();
    assert!(matches!(
        lsp.process_query(&query, &sets, &mut ledger, &mut rng),
        Err(PpgnnError::BadIndicator {
            expected: 5,
            got: 9
        })
    ));
}

/// Same call shape as the retired free function, built on the unified
/// `Encryptor` API.
fn encrypt_indicator<R: rand::Rng + ?Sized>(
    len: usize,
    pos: usize,
    ctx: &ppgnn::paillier::DjContext,
    rng: &mut R,
) -> ppgnn::paillier::EncryptedVector {
    use ppgnn::paillier::{Encryptor, FreshEncryptor};
    use rand::SeedableRng;
    FreshEncryptor::with_rng(ctx.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()))
        .encrypt_indicator(len, pos)
        .unwrap()
}
