//! Chaos tests: the networked LSP under seeded fault injection.
//!
//! The server wraps every accepted connection in a
//! [`ppgnn::server::FaultyStream`] that delays, corrupts, truncates,
//! and severs traffic on a schedule derived from a single seed, and the
//! resilient client rides through it. The invariants under chaos:
//!
//! * every query either decodes to the exact plaintext top-k (checked
//!   against the oracle) or surfaces a **typed** error — never a wrong
//!   answer, never a hang;
//! * `queries_issued` equals the number of *distinct* queries planned,
//!   no matter how many retries, reconnects, or replays it took;
//! * the server's per-group query counter never exceeds the distinct
//!   request IDs a group sent (replays are not double-counted);
//! * a panicking worker produces a typed `Internal` error, and the
//!   supervisor heals the pool back to full strength.
//!
//! The seed comes from `PPGNN_CHAOS_SEED` when set (CI pins two), so a
//! failing schedule is reproducible by exporting the same value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::{ErrorCode, FaultConfig, RetryPolicy, ServerError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const GROUPS: u64 = 5;
const QUERIES_PER_GROUP: usize = 100;
/// Hard ceiling on the whole soak: if the harness has not heard from a
/// group by then, something is hanging and the test fails loudly.
const SOAK_DEADLINE: Duration = Duration::from_secs(300);

fn grid_db(side: usize) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(
                    (i % side) as f64 / side as f64,
                    (i / side) as f64 / side as f64,
                ),
            )
        })
        .collect()
}

fn test_config(variant: Variant) -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        variant,
        ..PpgnnConfig::fast_test()
    }
}

fn chaos_seed() -> u64 {
    std::env::var("PPGNN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_5EED)
}

/// What one group reports back to the harness.
struct GroupOutcome {
    group: u64,
    ok: u64,
    typed_errors: u64,
    queries_issued: u64,
}

/// ≥500 queries across ≥5 groups, with every connection subject to
/// seeded delay/corrupt/truncate/sever faults. Answers are checked
/// against the plaintext oracle; failures must be typed; nothing hangs.
#[test]
fn seeded_soak_survives_fault_injection() {
    let seed = chaos_seed();
    let lsp = Arc::new(Lsp::new(grid_db(10), test_config(Variant::Plain)));
    let mut fault = FaultConfig::mixed(seed);
    // Keep injected latency small so the soak finishes promptly; the
    // schedule still exercises every fault class.
    fault.max_delay = Duration::from_millis(5);
    let config = ServerConfig {
        fault: Some(fault),
        // A corrupted length prefix can leave a read waiting for bytes
        // that never come; a short frame timeout turns that into a
        // typed error instead of a stall.
        frame_read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let (tx, rx) = mpsc::channel::<GroupOutcome>();
    for g in 1..=GROUPS {
        let lsp = Arc::clone(&lsp);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let config = test_config(if g % 2 == 0 {
                Variant::Opt
            } else {
                Variant::Plain
            });
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (g << 8));
            let mut outcome = GroupOutcome {
                group: g,
                ok: 0,
                typed_errors: 0,
                queries_issued: 0,
            };
            // The initial handshake itself can be hit by a fault; it
            // carries no session state yet, so just connect again.
            let mut client = None;
            for attempt in 0..10 {
                match GroupClient::connect(addr, g, config.clone(), lsp.space(), 2, &mut rng) {
                    Ok(c) => {
                        client = Some(c);
                        break;
                    }
                    Err(e) if attempt < 9 => {
                        eprintln!("group {g}: connect attempt {attempt} failed: {e}");
                        std::thread::sleep(Duration::from_millis(10 << attempt));
                    }
                    Err(e) => panic!("group {g}: connect failed after retries: {e}"),
                }
            }
            let mut client = client.expect("connect loop either breaks or panics");
            client.retry = RetryPolicy {
                budget: Duration::from_secs(20),
                ..RetryPolicy::default()
            };
            for q in 0..QUERIES_PER_GROUP {
                let users = vec![
                    Point::new(
                        0.05 + 0.9 * ((q * 7 + g as usize) % 97) as f64 / 97.0,
                        0.05 + 0.9 * ((q * 13 + 3) % 89) as f64 / 89.0,
                    ),
                    Point::new(
                        0.05 + 0.9 * ((q * 31 + 11) % 83) as f64 / 83.0,
                        0.05 + 0.9 * ((q * 5 + g as usize) % 79) as f64 / 79.0,
                    ),
                ];
                match client.query(&users, &mut rng) {
                    Ok(answer) => {
                        // The answer must be the *exact* top-k: a
                        // corrupted frame may never decrypt to a
                        // plausible-but-wrong result.
                        let oracle = lsp.plaintext_answer(&users, config.k);
                        assert_eq!(answer.len(), oracle.len(), "group {g} query {q}");
                        for (r, o) in answer.iter().zip(&oracle) {
                            assert!(
                                r.dist(&o.location) < 1e-6,
                                "group {g} query {q}: {r:?} vs oracle {:?}",
                                o.location
                            );
                        }
                        outcome.ok += 1;
                    }
                    // Typed failures are acceptable under chaos; a
                    // panic (wrong answer, protocol corruption leaking
                    // through) is not.
                    Err(
                        ServerError::Io(_)
                        | ServerError::ConnectionClosed
                        | ServerError::ChecksumMismatch { .. }
                        | ServerError::ServerBusy { .. }
                        | ServerError::Remote { .. },
                    ) => outcome.typed_errors += 1,
                    Err(other) => panic!("group {g} query {q}: untyped failure: {other}"),
                }
            }
            outcome.queries_issued = client.queries_issued();
            let stats = client.stats();
            eprintln!(
                "group {g}: ok={} typed_errors={} retries={} reconnects={} replays={} sheds={}",
                outcome.ok,
                outcome.typed_errors,
                stats.retries,
                stats.reconnects,
                stats.replayed_answers,
                stats.busy_sheds
            );
            client.goodbye();
            tx.send(outcome).ok();
        });
    }
    drop(tx);

    let deadline = std::time::Instant::now() + SOAK_DEADLINE;
    let mut outcomes = Vec::new();
    while outcomes.len() < GROUPS as usize {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        match rx.recv_timeout(left) {
            Ok(o) => outcomes.push(o),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                panic!(
                    "soak hung: only {}/{GROUPS} groups finished within {SOAK_DEADLINE:?} \
                     (seed {seed})",
                    outcomes.len()
                );
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!(
                    "a group thread died without reporting (seed {seed}); \
                     {}/{GROUPS} finished",
                    outcomes.len()
                );
            }
        }
    }

    let total_ok: u64 = outcomes.iter().map(|o| o.ok).sum();
    let total_err: u64 = outcomes.iter().map(|o| o.typed_errors).sum();
    assert_eq!(
        total_ok + total_err,
        GROUPS * QUERIES_PER_GROUP as u64,
        "every query must resolve"
    );
    // The chaos mix is mild enough that the retrying client should pull
    // the vast majority of queries through.
    assert!(
        total_ok >= GROUPS * QUERIES_PER_GROUP as u64 * 9 / 10,
        "too many failures under chaos: ok={total_ok} err={total_err} (seed {seed})"
    );
    for o in &outcomes {
        // One plan per query, regardless of retries/replays.
        assert_eq!(
            o.queries_issued, QUERIES_PER_GROUP as u64,
            "group {}: queries_issued must count distinct queries (seed {seed})",
            o.group
        );
        // The server never counts a request ID twice, and can only have
        // served distinct IDs that reached it.
        let served = handle.registry().queries_served(o.group);
        assert!(
            served <= QUERIES_PER_GROUP as u64,
            "group {}: served {served} > distinct requests (seed {seed})",
            o.group
        );
        assert!(
            served >= o.ok,
            "group {}: served {served} < answered {} (seed {seed})",
            o.group,
            o.ok
        );
    }

    let stats = handle.stats();
    eprintln!(
        "server: ok={} err={} replayed={} faults_injected={} worker_panics={}",
        stats.queries_ok.load(Ordering::Relaxed),
        stats.queries_err.load(Ordering::Relaxed),
        stats.replayed.load(Ordering::Relaxed),
        stats.faults_injected.load(Ordering::Relaxed),
        stats.worker_panics.load(Ordering::Relaxed),
    );
    // The schedule must actually have fired — otherwise this test
    // silently degrades into the plain e2e test.
    assert!(
        stats.faults_injected.load(Ordering::Relaxed) > 0,
        "chaos config injected no faults (seed {seed})"
    );
    assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

/// An engine that panics on demand, to exercise worker supervision.
struct PanicEngine {
    inner: MbmEngine,
    /// Panic on the next `n` calls.
    panics_left: AtomicU64,
}

impl QueryEngine for PanicEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        if self
            .panics_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("injected engine panic");
        }
        self.inner.answer(query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.inner.database_size()
    }
}

/// A worker that panics mid-query yields a typed `Internal` error (the
/// retrying client absorbs it), and the supervisor respawns the worker
/// so the pool returns to full strength — observable via the health
/// probe.
#[test]
fn worker_panic_heals_and_query_still_succeeds() {
    let engine = PanicEngine {
        inner: MbmEngine::new(grid_db(8)),
        panics_left: AtomicU64::new(2),
    };
    let lsp = Arc::new(Lsp::with_engine(
        Box::new(engine),
        test_config(Variant::Plain),
        Rect::UNIT,
    ));
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ppgnn_config = test_config(Variant::Plain);
    let mut client = GroupClient::connect(addr, 1, ppgnn_config, Rect::UNIT, 2, &mut rng).unwrap();

    // The first attempts hit the injected panics and come back as typed
    // Internal errors; the client's retry resends the same request ID
    // until a healthy worker answers it.
    let users = vec![Point::new(0.3, 0.3), Point::new(0.6, 0.6)];
    let answer = client
        .query(&users, &mut rng)
        .expect("query must survive worker panics via retry");
    let oracle = lsp.plaintext_answer(&users, 2);
    for (r, o) in answer.iter().zip(&oracle) {
        assert!(r.dist(&o.location) < 1e-6);
    }
    assert_eq!(client.queries_issued(), 1);

    let stats = handle.stats();
    assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 2);
    assert!(stats.workers_respawned.load(Ordering::Relaxed) >= 2);

    // The pool heals: poll the health probe until live_workers is back
    // to the configured size (bounded, so a broken supervisor fails the
    // test instead of hanging it).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let pong = client.ping().expect("health probe");
        if pong.live_workers == 2 {
            assert!(pong.uptime_ms > 0 || pong.queries_ok <= 1);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never healed: live_workers={}",
            pong.live_workers
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the healed pool serves fresh queries normally.
    let users2 = vec![Point::new(0.1, 0.8), Point::new(0.7, 0.2)];
    let answer2 = client.query(&users2, &mut rng).expect("post-heal query");
    let oracle2 = lsp.plaintext_answer(&users2, 2);
    for (r, o) in answer2.iter().zip(&oracle2) {
        assert!(r.dist(&o.location) < 1e-6);
    }
    client.goodbye();
    handle.shutdown();
}

/// A worker panic with retries disabled surfaces as a typed `Internal`
/// remote error — the caller sees the failure class, not a dead socket.
#[test]
fn worker_panic_is_a_typed_error_without_retry() {
    let engine = PanicEngine {
        inner: MbmEngine::new(grid_db(8)),
        panics_left: AtomicU64::new(1),
    };
    let lsp = Arc::new(Lsp::with_engine(
        Box::new(engine),
        test_config(Variant::Plain),
        Rect::UNIT,
    ));
    let handle = serve_world(
        Arc::clone(&lsp),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let mut client = GroupClient::connect(
        handle.local_addr(),
        1,
        test_config(Variant::Plain),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    client.retry.max_attempts = 1;
    let err = client
        .query(&[Point::new(0.2, 0.2), Point::new(0.4, 0.4)], &mut rng)
        .expect_err("panicked worker must yield an error");
    match err {
        ServerError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(
                message.contains("panic"),
                "panic message should be carried: {message:?}"
            );
        }
        other => panic!("expected typed Internal, got {other}"),
    }
    client.goodbye();
    handle.shutdown();
}
