//! Protocol-shape verification via the message transcript: the run must
//! follow Algorithm 1/2's communication pattern exactly — and nothing
//! else may cross the wire (e.g. no user-to-user location leaks).

use ppgnn::core::run_ppgnn_with_keys;
use ppgnn::prelude::*;
use ppgnn::sim::Party;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run() -> ppgnn::core::ProtocolRun {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pois: Vec<Poi> = (0..200)
        .map(|i| {
            Poi::new(
                i,
                Point::new((i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0),
            )
        })
        .collect();
    let cfg = PpgnnConfig {
        k: 3,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois, cfg);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let users = vec![
        Point::new(0.2, 0.3),
        Point::new(0.5, 0.6),
        Point::new(0.7, 0.2),
    ];
    run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap()
}

#[test]
fn message_order_follows_algorithm_1_and_2() {
    let t = run().transcript;
    assert!(
        t.ordered("pos broadcast", "query"),
        "positions precede the query"
    );
    assert!(
        t.ordered("query", "location set"),
        "sets follow the query here"
    );
    assert!(
        t.ordered("location set", "answer"),
        "LSP answers after inputs"
    );
    assert!(t.ordered("answer", "answer broadcast"), "broadcast is last");
}

#[test]
fn message_counts_match_group_size() {
    let t = run().transcript;
    let n = 3;
    assert_eq!(t.with_label("pos broadcast").count(), n - 1);
    assert_eq!(t.with_label("query").count(), 1);
    assert_eq!(t.with_label("location set").count(), n);
    assert_eq!(t.with_label("answer").count(), 1);
    assert_eq!(t.with_label("answer broadcast").count(), n - 1);
    // Nothing else crossed the wire.
    assert_eq!(t.messages().len(), (n - 1) + 1 + n + 1 + (n - 1));
}

#[test]
fn no_direct_user_to_user_traffic() {
    // Only the coordinator talks inside the group; ordinary users never
    // message each other (the "first observation" of §5: the only
    // intra-group traffic is the position broadcast).
    let t = run().transcript;
    for m in t.messages() {
        if let (Party::User(a), Party::User(b)) = (m.from, m.to) {
            panic!("user u{a} talked directly to u{b}");
        }
    }
}

#[test]
fn transcript_totals_agree_with_ledger() {
    let r = run();
    assert_eq!(r.transcript.total_bytes() as u64, r.report.comm_bytes_total);
}

#[test]
fn network_model_prices_a_real_run() {
    use ppgnn::sim::NetworkModel;
    let r = run();
    let fast = NetworkModel::mobile_4g().transcript_ms(&r.transcript);
    let slow = NetworkModel::mobile_3g().transcript_ms(&r.transcript);
    assert!(fast > 0.0);
    assert!(slow > fast, "3G must be slower: {slow} vs {fast}");
    // Sanity: the latency floor alone is #messages × one-way latency.
    let floor_4g = r.transcript.messages().len() as f64 * 50.0;
    assert!(fast >= floor_4g);
}

#[test]
fn every_user_submits_exactly_one_location_set() {
    let t = run().transcript;
    for u in 0..3u32 {
        let count = t
            .messages()
            .iter()
            .filter(|m| m.label == "location set" && m.from == Party::User(u) && m.to == Party::Lsp)
            .count();
        assert_eq!(count, 1, "user u{u}");
    }
}
