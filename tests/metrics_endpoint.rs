//! Integration tests for the 0.10 observability loop: the `/metrics`
//! listener's HTTP behaviour, windowed snapshots and SLO burn gauges
//! over a live run, and the cost-model warm restart — a server booted
//! on a data dir with a persisted model answers cost questions before
//! serving a single query.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::{DurabilityConfig, FsyncPolicy, WorldSeed};
use ppgnn::telemetry::costmodel::CostKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-obsrv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn http_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn world_config() -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    }
}

fn grid_pois() -> Vec<Poi> {
    (0..36)
        .map(|i| {
            Poi::new(
                i,
                Point::new((i % 6) as f64 / 6.0 + 0.08, (i / 6) as f64 / 6.0 + 0.08),
            )
        })
        .collect()
}

fn run_queries(handle: &ServerHandle, protocol: &PpgnnConfig, queries: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9e7);
    let mut client = GroupClient::connect(
        handle.local_addr(),
        11,
        protocol.clone(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .expect("connect");
    for q in 0..queries {
        let t = (q % 5) as f64 / 10.0;
        let users = vec![Point::new(0.3 + t, 0.4), Point::new(0.5, 0.3 + t)];
        client.query(&users, &mut rng).expect("query");
    }
    client.goodbye();
}

/// The listener speaks enough HTTP for a scraper: content-type on
/// `/metrics`, 200 JSON on `/healthz`, 404 on unknown paths, 405 on
/// non-GET methods — and burn gauges surface once an SLO is declared.
#[test]
fn metrics_listener_routes_and_reports_burn() {
    let protocol = world_config();
    let pois = grid_pois();
    use std::sync::Arc;
    let lsp = Arc::new(ppgnn::core::Lsp::new(pois, protocol.clone()));
    let config = ServerConfig::builder()
        .metrics_addr(Some("127.0.0.1:0".into()))
        .slo(Some(SloConfig::default()))
        .build()
        .unwrap();
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let addr = handle.metrics_addr().expect("metrics listener bound");

    run_queries(&handle, &protocol, 4);
    handle.flush_windows();

    let scrape = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(scrape.starts_with("HTTP/1.1 200"), "scrape: {scrape}");
    assert!(
        scrape.contains("application/openmetrics-text"),
        "missing OpenMetrics content type"
    );
    let body = scrape.split_once("\r\n\r\n").unwrap().1;
    assert!(body.ends_with("# EOF\n"));
    // All four burn samples are exported once an SLO is configured.
    for (objective, window) in [
        ("latency", "fast"),
        ("latency", "slow"),
        ("errors", "fast"),
        ("errors", "slow"),
    ] {
        assert!(
            body.contains(&format!(
                "ppgnn_slo_burn_permille{{objective=\"{objective}\",window=\"{window}\"}}"
            )),
            "missing burn sample {objective}/{window} in:\n{body}"
        );
    }
    // The windowed families carry the queries just run.
    assert!(body.contains("ppgnn_window_stage_samples{stage=\"end-to-end\"}"));

    // The same burns ride the health snapshot (and therefore Pong):
    // an error-free run burns zero error budget, and a latency burn is
    // structurally capped at 1e9/budget_ppm permille (everything over
    // threshold), which the default budget puts at 20000‰.
    let health = handle.health();
    assert_eq!(health.slo_error_fast_burn_pm, 0);
    assert_eq!(health.slo_error_slow_burn_pm, 0);
    assert!(health.slo_latency_fast_burn_pm <= 20_000);
    assert!(health.slo_latency_slow_burn_pm <= 20_000);

    let healthz = http_request(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(healthz.starts_with("HTTP/1.1 200"), "healthz: {healthz}");
    assert!(healthz.contains("\"live_workers\""));

    let missing = http_request(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "404: {missing}");

    let post = http_request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(post.starts_with("HTTP/1.1 405"), "405: {post}");

    // The stats face exposes the burn gauges for the text table.
    let gauges = handle.stats_probe().snapshot().gauges;
    for name in [
        "slo-latency-fast-burn-pm",
        "slo-latency-slow-burn-pm",
        "slo-error-fast-burn-pm",
        "slo-error-slow-burn-pm",
    ] {
        assert!(
            gauges.iter().any(|g| g.name == name),
            "stats snapshot missing gauge {name}"
        );
    }

    handle.shutdown();
}

/// A durable server persists its calibrated cost model at shutdown and
/// the next incarnation on the same data dir warm-starts from it: the
/// model is non-empty (and predicts paillier medians) before the new
/// server has answered anything.
#[test]
fn cost_model_survives_restart() {
    let dir = tmp_dir("warmstart");
    let protocol = world_config();
    let config = ServerConfig::builder()
        .durability(Some(DurabilityConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            checkpoint_every_ops: 1000,
        }))
        .build()
        .unwrap();

    // First life: serve queries so calibration has something to chew
    // on, flush the window, and shut down cleanly (which persists).
    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: grid_pois(),
            protocol: protocol.clone(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config.clone(),
    )
    .unwrap();
    run_queries(&handle, &protocol, 4);
    handle.flush_windows();
    let learned = handle.cost_model();
    assert!(!learned.is_empty(), "first life calibrated nothing");
    let key_bits = protocol.keysize as u32;
    let first_encrypt = learned
        .get(key_bits, CostKind::PaillierEncryptNs)
        .expect("encrypt constant calibrated in first life");
    handle.shutdown();
    assert!(
        dir.join("costmodel.v1").exists(),
        "shutdown must persist the model"
    );

    // Second life: no traffic at all — the model must come off disk.
    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: Vec::new(),
            protocol: protocol.clone(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let warm = handle.cost_model();
    assert!(
        !warm.is_empty(),
        "restarted server must warm-start its cost model from disk"
    );
    assert_eq!(
        warm.get(key_bits, CostKind::PaillierEncryptNs),
        Some(first_encrypt),
        "warm-started constant must match what the first life persisted"
    );
    assert!(
        warm.predict_stage_median_us(key_bits, ppgnn::telemetry::Stage::PaillierEncrypt)
            .is_some(),
        "warm model must predict before any traffic"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
