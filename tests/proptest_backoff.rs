//! Property-based tests of the client's retry backoff schedule.
//!
//! [`BackoffSchedule`] is a pure value type — no clocks, no I/O — so
//! its contract is directly checkable over random policies, seeds, and
//! server hints: every delay stays inside the jittered envelope, the
//! `retry_after_ms` hint acts as a floor, the envelope itself is
//! monotone and capped, and the whole sequence is a deterministic
//! function of the seed.

use std::time::Duration;

use ppgnn::server::{BackoffSchedule, RetryPolicy};
use proptest::prelude::*;

fn policy(base_ms: u64, cap_ms: u64, max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(base_ms),
        cap: Duration::from_millis(cap_ms.max(base_ms)),
        budget: Duration::from_secs(60),
        max_attempts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every delay lies in `[envelope/2, envelope]` before the hint is
    /// applied, and never exceeds `max(cap, hint)` after it.
    #[test]
    fn delay_is_bounded_by_envelope_and_hint(
        seed in any::<u64>(),
        base_ms in 1u64..500,
        cap_ms in 1u64..5_000,
        hint_ms in 0u32..3_000,
    ) {
        let p = policy(base_ms, cap_ms, u32::MAX);
        let mut s = BackoffSchedule::new(p.clone(), seed);
        for attempt in 0..24 {
            let envelope = s.envelope(attempt);
            let hint = (attempt % 2 == 0).then_some(hint_ms);
            let d = s.next_delay(hint);
            let floor = Duration::from_millis(hint.unwrap_or(0) as u64);
            // Never beyond the envelope unless the hint pushed it up...
            prop_assert!(d <= envelope.max(floor), "attempt {attempt}: {d:?} > {envelope:?}");
            // ...never below half the envelope unless the envelope is
            // sub-nanosecond-jitterable, and never below the hint.
            prop_assert!(d >= floor, "attempt {attempt}: {d:?} < hint floor {floor:?}");
            prop_assert!(
                d.max(floor) >= Duration::from_nanos(envelope.as_nanos() as u64 / 2),
                "attempt {attempt}: {d:?} below half-envelope"
            );
            prop_assert!(d <= p.cap.max(floor));
        }
    }

    /// The un-jittered envelope is monotone non-decreasing in the
    /// attempt index and capped, for any base/cap combination.
    #[test]
    fn envelope_is_monotone_and_capped(
        base_ms in 1u64..2_000,
        cap_ms in 1u64..60_000,
    ) {
        let p = policy(base_ms, cap_ms, 10);
        let s = BackoffSchedule::new(p.clone(), 0);
        let mut prev = Duration::ZERO;
        for attempt in 0..96 {
            let e = s.envelope(attempt);
            prop_assert!(e >= prev, "envelope shrank at attempt {attempt}");
            prop_assert!(e <= p.cap);
            prev = e;
        }
        // Far out, the cap binds exactly (base >= 1ms, so 2^60 * base
        // saturates far beyond any cap here).
        prop_assert_eq!(s.envelope(95), p.cap);
    }

    /// The delay sequence is a pure function of (policy, seed): two
    /// schedules with the same inputs agree forever, and the sequence
    /// does not depend on global state.
    #[test]
    fn schedule_is_deterministic_per_seed(
        seed in any::<u64>(),
        base_ms in 1u64..200,
        cap_ms in 1u64..2_000,
    ) {
        let p = policy(base_ms, cap_ms, u32::MAX);
        let mut a = BackoffSchedule::new(p.clone(), seed);
        let mut b = BackoffSchedule::new(p, seed);
        for i in 0..32 {
            let hint = if i % 3 == 0 { Some(7) } else { None };
            prop_assert_eq!(a.next_delay(hint), b.next_delay(hint));
        }
    }

    /// `attempts_left` admits exactly `max_attempts` total attempts:
    /// the first try plus `max_attempts - 1` retries.
    #[test]
    fn attempt_count_is_exact(max_attempts in 1u32..20, seed in any::<u64>()) {
        let p = policy(1, 10, max_attempts);
        let mut s = BackoffSchedule::new(p, seed);
        let mut retries = 0u32;
        while s.attempts_left() {
            s.next_delay(None);
            retries += 1;
            prop_assert!(retries <= max_attempts, "attempts_left never went false");
        }
        prop_assert_eq!(retries, max_attempts - 1);
    }
}
