//! Property-based tests over the extension subsystems: road networks,
//! the dynamic index, wire framing, and the exact-vs-sampled region.

use ppgnn::core::attack_exact::exact_feasible_fraction;
use ppgnn::core::messages::LocationSetMessage;
use ppgnn::geo::{group_knn_brute_force, Aggregate, DynamicRTree, Poi, Point, Rect, RoadNetwork};
use proptest::prelude::*;

fn points(n: usize, seed: u64) -> Vec<Point> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dijkstra satisfies the triangle inequality over nodes.
    #[test]
    fn sssp_triangle_inequality(rows in 2usize..6, cols in 2usize..6, seed in any::<u64>()) {
        let net = RoadNetwork::grid(rows, cols, 0.05, seed);
        let n = net.node_count();
        let d0 = net.sssp(0);
        let mid = (n / 2) as u32;
        let dmid = net.sssp(mid);
        for j in 0..n {
            // d(0, j) <= d(0, mid) + d(mid, j)
            prop_assert!(d0[j] <= d0[mid as usize] + dmid[j] + 1e-9);
        }
    }

    /// SSSP from a node to itself is zero and symmetric pairwise.
    #[test]
    fn sssp_symmetry(rows in 2usize..5, cols in 2usize..5, seed in any::<u64>()) {
        let net = RoadNetwork::grid(rows, cols, 0.05, seed);
        let a = 0u32;
        let b = (net.node_count() - 1) as u32;
        prop_assert!((net.sssp(a)[b as usize] - net.sssp(b)[a as usize]).abs() < 1e-9);
        prop_assert_eq!(net.sssp(a)[a as usize], 0.0);
    }

    /// The dynamic tree equals brute force after an arbitrary
    /// insert/delete interleaving.
    #[test]
    fn dynamic_tree_matches_oracle(
        ops in prop::collection::vec((any::<bool>(), 0u32..60, 0.0f64..1.0, 0.0f64..1.0), 0..40),
        seed in any::<u64>(),
    ) {
        let base: Vec<Poi> = points(30, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, p))
            .collect();
        let mut tree = DynamicRTree::new(base.clone()).with_rebuild_threshold(8);
        let mut oracle = base;
        for (insert, id, x, y) in ops {
            if insert {
                let poi = Poi::new(id, Point::new(x, y));
                oracle.retain(|p| p.id != id);
                oracle.push(poi);
                tree.insert(poi);
            } else {
                oracle.retain(|p| p.id != id);
                tree.remove(id);
            }
        }
        prop_assert_eq!(tree.len(), oracle.len());
        let q = vec![Point::new(0.5, 0.5)];
        let got: Vec<u32> = tree.group_knn(&q, 7, Aggregate::Sum).iter().map(|p| p.id).collect();
        let want: Vec<u32> =
            group_knn_brute_force(&oracle, &q, 7, Aggregate::Sum).iter().map(|p| p.id).collect();
        prop_assert_eq!(got, want);
    }

    /// Location-set wire framing roundtrips for any size.
    #[test]
    fn location_set_wire_roundtrip(user in 0usize..100, count in 0usize..40, seed in any::<u64>()) {
        let msg = LocationSetMessage { user_index: user, locations: points(count, seed) };
        let wire = msg.to_wire();
        prop_assert_eq!(wire.len(), msg.byte_len());
        let back = LocationSetMessage::from_wire(&wire).unwrap();
        prop_assert_eq!(back.user_index, user);
        prop_assert_eq!(back.locations, msg.locations);
    }

    /// The exact feasible fraction is within [0, 1] and shrinks with
    /// every extra ranked POI.
    #[test]
    fn exact_region_monotone(count in 2usize..8, seed in any::<u64>()) {
        let target = points(1, seed ^ 1)[0];
        let mut pois: Vec<Poi> = points(count, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, p))
            .collect();
        pois.sort_by(|a, b| a.location.dist(&target).total_cmp(&b.location.dist(&target)));
        let mut prev = 1.0f64;
        for t in 1..=count {
            let theta = exact_feasible_fraction(&pois[..t], &Rect::UNIT);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&theta));
            prop_assert!(theta <= prev + 1e-12);
            prev = theta;
        }
        // The true target always stays inside the exact region (θ > 0).
        prop_assert!(prev > 0.0);
    }
}
