//! Moving-group soak: continuous queries over a live, mutating world,
//! oracle-checked against a plaintext mirror.
//!
//! The hard guarantees under test, per ISSUE acceptance:
//! * **zero missed invalidations** — whenever the plaintext top-k of a
//!   subscribed group changes, the server must have pushed a re-plan
//!   notification *before* the harness audits the tick;
//! * **re-query savings ≥ 2×** — standing queries with safe regions
//!   must beat naive per-tick re-issue by at least 2×;
//! * every re-planned answer matches the plaintext oracle exactly.
//!
//! Spurious invalidations (a push whose re-plan returns the same
//! answer) are the designed-in price of conservative regions; they are
//! bounded here, not forbidden.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ppgnn::geo::PoiOp;
use ppgnn::prelude::*;
use ppgnn::server::{
    run_moving_soak, serve_world, ErrorCode, MovingSoakConfig, ServerError, SubscriptionKind,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn check(seed: u64) {
    let mut config = MovingSoakConfig::default();
    config.world.seed = seed;
    let report = run_moving_soak(&config).expect("soak transport failed");
    eprintln!("seed {seed}:\n{}", report.render());
    assert_eq!(
        report.missed_invalidations, 0,
        "seed {seed}: the server stayed silent while a subscribed answer changed"
    );
    assert_eq!(
        report.answer_mismatches, 0,
        "seed {seed}: a re-planned answer disagreed with the plaintext oracle"
    );
    assert!(
        report.requery_savings() >= 2.0,
        "seed {seed}: standing queries must be >= 2x cheaper than per-tick re-issue, got {:.2}x \
         ({} re-queries vs {} naive)",
        report.requery_savings(),
        report.requeries(),
        report.naive_requeries,
    );
    // Conservative regions may over-notify, but not degenerately: no
    // more spurious re-plans than the naive baseline they replace.
    assert!(
        report.spurious_invalidations <= report.naive_requeries / 2,
        "seed {seed}: spurious invalidations ({}) defeat the point of safe regions",
        report.spurious_invalidations,
    );
    assert!(report.passed(), "seed {seed}: report gate failed");
}

/// First pinned seed — also the CI moving-smoke seed.
#[test]
fn moving_soak_seed_7() {
    check(7);
}

/// Second pinned seed — different trajectories, same guarantees.
#[test]
fn moving_soak_seed_23() {
    check(23);
}

fn grid_world(side: usize) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(
                    (i % side) as f64 / side as f64 + 0.02,
                    (i / side) as f64 / side as f64 + 0.02,
                ),
            )
        })
        .collect()
}

fn subscription_config() -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    }
}

/// Unsubscribing the same token twice is a no-op, not an error: the
/// server confirms with `Ended` both times, the registry drops the
/// standing query exactly once, and the connection stays healthy for
/// further queries.
#[test]
fn double_unsubscribe_is_idempotent() {
    let world = Arc::new(DynamicLsp::new(grid_world(8), subscription_config()));
    let handle = serve_world(Arc::clone(&world), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut client = GroupClient::connect(
        handle.local_addr(),
        1,
        subscription_config(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();

    let locations = [Point::new(0.3, 0.3), Point::new(0.4, 0.4)];
    let (_, token) = client.subscribe(&locations, &mut rng).unwrap();
    assert_eq!(handle.stats().subscribes_ok.load(Ordering::Relaxed), 1);

    client.unsubscribe(&token).unwrap();
    client.unsubscribe(&token).unwrap();
    assert_eq!(
        handle.stats().unsubscribes.load(Ordering::Relaxed),
        1,
        "the registry must drop the standing query exactly once"
    );

    // The connection took no strike and still answers queries.
    let answer = client.query(&locations, &mut rng).unwrap();
    let oracle = world.snapshot().0.plaintext_answer(&locations, 2);
    assert_eq!(answer.len(), oracle.len());
    for (a, o) in answer.iter().zip(&oracle) {
        assert!(a.dist(&o.location) < 1e-6);
    }
    assert_eq!(handle.registry().violations(), 0);
    client.goodbye();
    handle.shutdown();
}

/// The standing-query cap boundary is exact: the cap-th subscription is
/// granted, the cap-plus-one-th draws a typed violation, and — the part
/// a sloppy implementation gets wrong — the refusal must not disturb
/// the subscriptions already granted: they all still fire on the next
/// invalidating mutation.
#[test]
fn subscription_cap_refusal_leaves_earlier_grants_live() {
    const CAP: usize = 3;
    let world = Arc::new(DynamicLsp::new(grid_world(8), subscription_config()));
    let config = ServerConfig {
        max_subscriptions: CAP,
        admin_token: Some(0xCAB),
        ..ServerConfig::default()
    };
    let handle = serve_world(Arc::clone(&world), "127.0.0.1:0", config).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(37);

    let mut subscribers = Vec::new();
    let mut centroids = Vec::new();
    for g in 0..CAP as u64 {
        let mut client = GroupClient::connect(
            handle.local_addr(),
            g + 1,
            subscription_config(),
            Rect::UNIT,
            2,
            &mut rng,
        )
        .unwrap();
        let x = 0.2 + 0.25 * g as f64;
        let locations = [Point::new(x, 0.3), Point::new(x, 0.5)];
        client.subscribe(&locations, &mut rng).unwrap();
        centroids.push(Point::new(x, 0.4));
        subscribers.push(client);
    }
    assert_eq!(
        handle.stats().subscribes_ok.load(Ordering::Relaxed),
        CAP as u64,
        "the cap-th subscription itself must be granted"
    );

    // One past the cap: typed violation, not a silent drop.
    let mut over = GroupClient::connect(
        handle.local_addr(),
        99,
        subscription_config(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    let err = over
        .subscribe(&[Point::new(0.6, 0.6), Point::new(0.7, 0.7)], &mut rng)
        .expect_err("the cap-plus-one-th subscription must be refused");
    assert!(
        matches!(
            err,
            ServerError::Remote {
                code: ErrorCode::Violation,
                ..
            }
        ),
        "wrong error: {err}"
    );
    assert!(handle.stats().subscribe_rejected.load(Ordering::Relaxed) >= 1);

    // A plain query still works on the refused connection.
    let probe = [Point::new(0.6, 0.6), Point::new(0.7, 0.7)];
    assert!(!over.query(&probe, &mut rng).unwrap().is_empty());

    // New POIs right on each group's centroid beat every current
    // answer, so all CAP standing queries must fire — proving the
    // refusal above did not evict or wedge them.
    let ops: Vec<PoiOp> = centroids
        .iter()
        .enumerate()
        .map(|(i, c)| PoiOp::Insert(Poi::new(10_000 + i as u32, *c)))
        .collect();
    let mut admin = GroupClient::connect(
        handle.local_addr(),
        500,
        subscription_config(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    admin.poi_update(0xCAB, &ops).unwrap();

    for (g, client) in subscribers.iter_mut().enumerate() {
        let updates = client.poll_notifications(Duration::from_secs(5)).unwrap();
        assert!(
            updates
                .iter()
                .any(|u| u.kind == SubscriptionKind::Invalidated),
            "group {g}: subscription went silent after the cap refusal"
        );
    }
    handle.shutdown();
}

/// Forwards one client connection at a time to `server`, severing the
/// live pair when `cut` goes high — a deterministic network reset the
/// server experiences as an ordinary client disconnect (no restart, no
/// epoch change). After a cut the next client connect is piped anew.
fn wire_cutter(
    listener: std::net::TcpListener,
    server: std::net::SocketAddr,
    cut: Arc<std::sync::atomic::AtomicBool>,
) {
    use std::io::{Read as _, Write as _};
    use std::net::{Shutdown, TcpStream};
    std::thread::spawn(move || {
        for inbound in listener.incoming() {
            let Ok(inbound) = inbound else { return };
            let Ok(outbound) = TcpStream::connect(server) else {
                return;
            };
            let pipes = [
                (inbound.try_clone().unwrap(), outbound.try_clone().unwrap()),
                (outbound.try_clone().unwrap(), inbound.try_clone().unwrap()),
            ]
            .map(|(mut from, mut to)| {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    loop {
                        match from.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if to.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    let _ = to.shutdown(Shutdown::Both);
                })
            });
            while !cut.load(Ordering::Relaxed) && pipes.iter().any(|p| !p.is_finished()) {
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = inbound.shutdown(Shutdown::Both);
            let _ = outbound.shutdown(Shutdown::Both);
            for p in pipes {
                let _ = p.join();
            }
            cut.store(false, Ordering::Relaxed);
        }
    });
}

/// A connection lost while the server stays alive must not be silent:
/// the server reaps the standing query with the connection, so the
/// client's self-healing poll — even at an *unchanged* epoch — must
/// hand back a synthetic `Invalidated` instead of `Ok([])` over a
/// token nobody watches any more.
#[test]
fn same_epoch_reconnect_invalidates_standing_query() {
    let world = Arc::new(DynamicLsp::new(grid_world(8), subscription_config()));
    let handle = serve_world(Arc::clone(&world), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = listener.local_addr().unwrap();
    let cut = Arc::new(std::sync::atomic::AtomicBool::new(false));
    wire_cutter(listener, handle.local_addr(), Arc::clone(&cut));

    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let mut client = GroupClient::connect(
        proxy_addr,
        1,
        subscription_config(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    let locations = [Point::new(0.3, 0.3), Point::new(0.4, 0.4)];
    let (_, token) = client.subscribe(&locations, &mut rng).unwrap();
    let epoch = client.server_epoch();

    // Sever the wire. The server lives on; only the connection (and
    // with it the server-side subscription) dies.
    cut.store(true, Ordering::Relaxed);
    let pushes = client.poll_notifications(Duration::from_secs(5)).unwrap();
    assert_eq!(client.server_epoch(), epoch, "the server never restarted");
    assert!(
        pushes
            .iter()
            .any(|p| p.request_id == token.request_id && p.kind == SubscriptionKind::Invalidated),
        "a same-epoch reconnect must invalidate the standing query"
    );

    // The caller's normal invalidation handling re-subscribes and the
    // replacement standing query is fully live.
    let (_, token2) = client.subscribe(&locations, &mut rng).unwrap();
    client.unsubscribe(&token2).unwrap();
    client.goodbye();
    handle.shutdown();
}
