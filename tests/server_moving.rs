//! Moving-group soak: continuous queries over a live, mutating world,
//! oracle-checked against a plaintext mirror.
//!
//! The hard guarantees under test, per ISSUE acceptance:
//! * **zero missed invalidations** — whenever the plaintext top-k of a
//!   subscribed group changes, the server must have pushed a re-plan
//!   notification *before* the harness audits the tick;
//! * **re-query savings ≥ 2×** — standing queries with safe regions
//!   must beat naive per-tick re-issue by at least 2×;
//! * every re-planned answer matches the plaintext oracle exactly.
//!
//! Spurious invalidations (a push whose re-plan returns the same
//! answer) are the designed-in price of conservative regions; they are
//! bounded here, not forbidden.

use ppgnn::server::{run_moving_soak, MovingSoakConfig};

fn check(seed: u64) {
    let mut config = MovingSoakConfig::default();
    config.world.seed = seed;
    let report = run_moving_soak(&config).expect("soak transport failed");
    eprintln!("seed {seed}:\n{}", report.render());
    assert_eq!(
        report.missed_invalidations, 0,
        "seed {seed}: the server stayed silent while a subscribed answer changed"
    );
    assert_eq!(
        report.answer_mismatches, 0,
        "seed {seed}: a re-planned answer disagreed with the plaintext oracle"
    );
    assert!(
        report.requery_savings() >= 2.0,
        "seed {seed}: standing queries must be >= 2x cheaper than per-tick re-issue, got {:.2}x \
         ({} re-queries vs {} naive)",
        report.requery_savings(),
        report.requeries(),
        report.naive_requeries,
    );
    // Conservative regions may over-notify, but not degenerately: no
    // more spurious re-plans than the naive baseline they replace.
    assert!(
        report.spurious_invalidations <= report.naive_requeries / 2,
        "seed {seed}: spurious invalidations ({}) defeat the point of safe regions",
        report.spurious_invalidations,
    );
    assert!(report.passed(), "seed {seed}: report gate failed");
}

/// First pinned seed — also the CI moving-smoke seed.
#[test]
fn moving_soak_seed_7() {
    check(7);
}

/// Second pinned seed — different trajectories, same guarantees.
#[test]
fn moving_soak_seed_23() {
    check(23);
}
