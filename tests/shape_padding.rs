//! Golden tests of the constant-shape response policy (DESIGN.md §16):
//! under `--shape padded`, the on-wire byte length of every `Answer`
//! frame is one policy-wide constant no matter which session parameters
//! produced it — swept across the full admissible δ′ range and both
//! ends of the k range — while the unshaped server's lengths track k.
//! The `observer` binary proves the same thing statistically; this test
//! pins the exact bytes so a regression names the offending size.

use std::sync::Arc;
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::frame::{FrameType, HEADER_BYTES};
use ppgnn::server::{serve_world, ServerConfig, ShapeMode, ShapePolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Quantum for the padded arms: small, so each query costs one bucket
/// and the whole sweep stays fast; the length check is quantum-blind.
const QUANTUM: Duration = Duration::from_millis(20);

/// The policy every padded arm runs: one envelope covering the whole
/// sweep, exactly as a production server would admit mixed sessions.
fn policy() -> ShapePolicy {
    ShapePolicy::padded(128, 9, QUANTUM)
}

/// Runs one (δ′, k) arm against a fresh in-process server and returns
/// the observed total on-wire bytes of its `Answer` frames.
fn answer_bytes_for(delta: usize, k: usize, shape: ShapePolicy) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5ae7 ^ (delta as u64) << 8 ^ k as u64);
    let config = PpgnnConfig {
        k,
        d: 5,
        delta,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let pois: Vec<Poi> = (0..64)
        .map(|i| Poi::new(i, Point::new((i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0)))
        .collect();
    let server_config = ServerConfig::builder()
        .workers(2)
        .rng_seed(7)
        .shape(shape)
        .build()
        .expect("config");
    let handle = serve_world(
        Arc::new(Lsp::new(pois, config.clone())),
        "127.0.0.1:0",
        server_config,
    )
    .expect("server");
    let mut client = GroupClient::connect(handle.local_addr(), 1, config, Rect::UNIT, 2, &mut rng)
        .expect("connect");
    client.set_wire_tap(true);
    for _ in 0..2 {
        client
            .query(&[Point::new(0.2, 0.3), Point::new(0.6, 0.5)], &mut rng)
            .expect("query");
    }
    let sizes = client
        .take_wire_observations()
        .into_iter()
        .filter(|o| o.frame_type == FrameType::Answer)
        .map(|o| o.total_bytes)
        .collect();
    handle.shutdown();
    sizes
}

/// The sweep grid: the admissible δ′ range under d=5, n=2 (d ≤ δ′ ≤
/// d^n = 25, both ends included) crossed with both ends of the k range
/// the policy admits.
fn sweep() -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for delta in [5, 9, 15, 25] {
        for k in [2, 8] {
            grid.push((delta, k));
        }
    }
    grid
}

#[test]
fn padded_answer_bytes_are_constant_across_the_sweep() {
    let policy = policy();
    let expected = HEADER_BYTES + policy.answer_target();
    for (delta, k) in sweep() {
        let sizes = answer_bytes_for(delta, k, policy);
        assert!(!sizes.is_empty(), "no answers observed at δ'={delta} k={k}");
        for size in sizes {
            assert_eq!(
                size, expected,
                "padded answer at δ'={delta} k={k} was {size}B, target {expected}B"
            );
        }
    }
}

#[test]
fn unshaped_answer_bytes_leak_the_session_parameters() {
    // The control arm: without shaping, answer length is a function of
    // k — the exact leak the padded sweep above proves closed. The two
    // k arms must differ (at 128-bit keys k 2 and k 8 pack to different
    // heights); if this ever stops holding, the padded test above has
    // lost its teeth and the sweep needs a new distinguishing pair.
    let small = answer_bytes_for(9, 2, ShapePolicy::off());
    let large = answer_bytes_for(9, 8, ShapePolicy::off());
    assert!(!small.is_empty() && !large.is_empty());
    assert_ne!(
        small[0], large[0],
        "k=2 and k=8 answers are the same size unshaped — pick a sweep \
         pair that actually differs"
    );
    // And within one session the length is stable (replay-identical),
    // so the constant-shape property is about padding, not luck.
    assert!(small.windows(2).all(|w| w[0] == w[1]), "{small:?}");
}

#[test]
fn padded_handshake_advertises_the_policy() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let config = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let pois: Vec<Poi> = (0..16)
        .map(|i| Poi::new(i, Point::new((i % 4) as f64 / 4.0, (i / 4) as f64 / 4.0)))
        .collect();
    let server_config = ServerConfig::builder()
        .workers(1)
        .shape(policy())
        .build()
        .expect("config");
    let handle = serve_world(
        Arc::new(Lsp::new(pois, config.clone())),
        "127.0.0.1:0",
        server_config,
    )
    .expect("server");
    let client = GroupClient::connect(handle.local_addr(), 1, config, Rect::UNIT, 2, &mut rng)
        .expect("connect");
    assert_eq!(client.shape_mode(), ShapeMode::Padded);
    let info = client.server_info();
    assert_eq!(info.answer_target as usize, policy().answer_target());
    assert_eq!(info.control_target as usize, policy().control_target());
    assert_eq!(
        info.latency_quantum_ms as u128,
        policy().latency_quantum.as_millis()
    );
    handle.shutdown();
}
