//! Property-based tests over the cryptographic substrates: ring axioms
//! of the big-integer arithmetic and the homomorphism laws of the
//! generalized Paillier cryptosystem.

use ppgnn::bigint::{BigUint, MontgomeryCtx, UniformBigUint};
use ppgnn::paillier::{generate_keypair, DjContext, Keypair};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// A shared 128-bit keypair: keygen is the slow part, the laws are not.
fn shared_keys() -> &'static Keypair {
    static KEYS: OnceLock<Keypair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(0xFEED);
        generate_keypair(128, &mut rng)
    })
}

/// Strategy: an arbitrary BigUint of up to `limbs` limbs.
fn big(limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutative(a in big(6), b in big(6)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in big(5), b in big(5), c in big(5)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in big(5), b in big(5)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in big(4), b in big(4), c in big(4)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in big(6), b in big(6)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in big(8), b in big(4)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_power_of_two_mul(a in big(4), s in 0usize..200) {
        let shifted = a.shl_bits(s);
        let pow = BigUint::one().shl_bits(s);
        prop_assert_eq!(shifted, &a * &pow);
    }

    #[test]
    fn bytes_roundtrip(a in big(8)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a);
    }

    #[test]
    fn decimal_roundtrip(a in big(5)) {
        let s = a.to_decimal_string();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn montgomery_matches_plain_modpow(base in big(4), exp in big(2), m in big(3)) {
        prop_assume!(!m.is_zero() && !m.is_one());
        let modulus = if m.is_even() { m.add_limb(1) } else { m };
        let ctx = MontgomeryCtx::new(modulus.clone());
        prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow_plain(&exp, &modulus));
    }

    #[test]
    fn mod_inverse_is_inverse(a in big(3), m in big(3)) {
        prop_assume!(!m.is_zero() && !m.is_one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!((&a % &m).mod_mul(&inv, &m), BigUint::one() % &m);
        }
    }

    #[test]
    fn gcd_divides_both(a in big(4), b in big(4)) {
        prop_assume!(!a.is_zero() || !b.is_zero());
        let g = a.gcd(&b);
        if !a.is_zero() { prop_assert!((&a % &g).is_zero()); }
        if !b.is_zero() { prop_assert!((&b % &g).is_zero()); }
    }
}

/// One fresh encryption through the unified `Encryptor` API, seeded from
/// the property's RNG so cases stay deterministic.
fn enc_one(ctx: &DjContext, m: &BigUint, rng: &mut ChaCha8Rng) -> ppgnn::paillier::Ciphertext {
    use ppgnn::paillier::{Encryptor, FreshEncryptor};
    FreshEncryptor::seeded(ctx.clone(), rand::Rng::gen(rng))
        .encrypt(m)
        .unwrap()
}

proptest! {
    // Crypto laws are slower per case; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn paillier_roundtrip_random_plaintexts(seed in any::<u64>()) {
        let (pk, sk) = shared_keys();
        let ctx = DjContext::new(pk, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = rng.gen_biguint_below(ctx.plaintext_modulus());
        let c = enc_one(&ctx, &m, &mut rng);
        prop_assert_eq!(ctx.decrypt(&c, sk), m);
    }

    #[test]
    fn homomorphic_add_law(seed in any::<u64>()) {
        let (pk, sk) = shared_keys();
        let ctx = DjContext::new(pk, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = rng.gen_biguint_below(ctx.plaintext_modulus());
        let b = rng.gen_biguint_below(ctx.plaintext_modulus());
        let sum = ctx.add(&enc_one(&ctx, &a, &mut rng), &enc_one(&ctx, &b, &mut rng));
        let expected = a.mod_add(&b, ctx.plaintext_modulus());
        prop_assert_eq!(ctx.decrypt(&sum, sk), expected);
    }

    #[test]
    fn homomorphic_scalar_law(seed in any::<u64>(), k in 0u64..1000) {
        let (pk, sk) = shared_keys();
        let ctx = DjContext::new(pk, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = rng.gen_biguint_below(ctx.plaintext_modulus());
        let prod = ctx.scalar_mul(&BigUint::from(k), &enc_one(&ctx, &m, &mut rng));
        let expected = m.mod_mul(&BigUint::from(k), ctx.plaintext_modulus());
        prop_assert_eq!(ctx.decrypt(&prod, sk), expected);
    }

    #[test]
    fn dot_product_law(seed in any::<u64>()) {
        use ppgnn::paillier::{Encryptor, FreshEncryptor};
        let (pk, sk) = shared_keys();
        let ctx = DjContext::new(pk, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v: Vec<BigUint> = (0..4).map(|_| BigUint::from(rng.gen_biguint(20).to_u64().unwrap_or(0))).collect();
        let x: Vec<BigUint> = (0..4).map(|_| BigUint::from(rng.gen_biguint(20).to_u64().unwrap_or(0))).collect();
        let enc = FreshEncryptor::seeded(ctx.clone(), rand::Rng::gen(&mut rng))
            .encrypt_vector(&v)
            .unwrap();
        let dot = enc.dot(&x, &ctx).unwrap();
        let expected = v.iter().zip(&x).fold(BigUint::zero(), |acc, (a, b)| &acc + &(a * b));
        prop_assert_eq!(ctx.decrypt(&dot, sk), expected % ctx.plaintext_modulus());
    }

    #[test]
    fn layered_epsilon2_roundtrip(seed in any::<u64>()) {
        let (pk, sk) = shared_keys();
        let ctx1 = DjContext::new(pk, 1);
        let ctx2 = DjContext::new(pk, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = rng.gen_biguint_below(ctx1.plaintext_modulus());
        let inner = enc_one(&ctx1, &m, &mut rng);
        let outer = enc_one(&ctx2, &inner.as_plaintext(), &mut rng);
        let rec_inner = ctx2.decrypt(&outer, sk);
        let rec = ctx1.decrypt(&ppgnn::paillier::Ciphertext::from_parts(rec_inner, 1), sk);
        prop_assert_eq!(rec, m);
    }
}
