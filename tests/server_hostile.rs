//! Hostile-client tests: the validation gate, admission control, and
//! the mallory catalog driven at a live server — concurrently with
//! legitimate, oracle-checked traffic.
//!
//! The headline soak mirrors the acceptance bar for the hardening work:
//! hundreds of adversarial connections drawn from the full attack
//! catalog, every one answered with a typed error or a clean
//! disconnect, while honest groups keep getting exact answers and the
//! session table never grows past its cap.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppgnn::prelude::*;
use ppgnn::server::frame::{
    read_frame, write_frame, ErrorPayload, FrameType, QueryPayload, DEFAULT_MAX_PAYLOAD,
};
use ppgnn::server::mallory::{run_attack, run_catalog, Attack, AttackContext, MalloryOutcome};
use ppgnn::server::{
    serve_world, DurabilityConfig, ErrorCode, HelloPolicy, ServerError, WorldSeed,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn grid_db(side: usize) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(
                    (i % side) as f64 / side as f64,
                    (i / side) as f64 / side as f64,
                ),
            )
        })
        .collect()
}

fn test_config() -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    }
}

fn hardened(frame_timeout: Duration, max_sessions: usize) -> ServerConfig {
    ServerConfig {
        frame_read_timeout: frame_timeout,
        max_sessions,
        session_idle_ttl: Duration::from_secs(2),
        rate_limit_per_sec: 0.0, // soak throughput; rate tests arm it
        ..ServerConfig::default()
    }
}

/// The acceptance soak: ≥200 adversarial connections from the full
/// catalog and ≥100 legitimate oracle-checked queries, interleaved on
/// one server. Zero panics, every attack contained, session table
/// bounded throughout.
#[test]
fn mallory_soak_contains_catalog_while_legit_traffic_flows() {
    const SESSION_CAP: usize = 32;
    const ATTACKERS: usize = 2;
    const ROUNDS: usize = 7; // 2 × 7 × 18 = 252 adversarial connections
    const LEGIT_GROUPS: usize = 4;
    const LEGIT_QUERIES: usize = 25; // 4 × 25 = 100 oracle-checked

    let lsp = Arc::new(Lsp::new(grid_db(10), test_config()));
    let handle = serve_world(
        Arc::clone(&lsp),
        "127.0.0.1:0",
        hardened(Duration::from_millis(300), SESSION_CAP),
    )
    .unwrap();
    let addr = handle.local_addr();

    let mut ctx = AttackContext::new(0xa77ac4).expect("attack context");
    ctx.slow_stall = Duration::from_millis(800);

    // Watchdog: the session gauge must respect the cap at every sample,
    // not just at the end.
    let done = AtomicBool::new(false);
    let max_seen = AtomicUsize::new(0);

    let (mut runs, mut legit_ok) = (Vec::new(), 0usize);
    std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                max_seen.fetch_max(handle.registry().len(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let attackers: Vec<_> = (0..ATTACKERS)
            .map(|a| {
                let ctx = &ctx;
                scope.spawn(move || run_catalog(addr, ctx, 0xbead + a as u64, ROUNDS))
            })
            .collect();

        let legit: Vec<_> = (0..LEGIT_GROUPS)
            .map(|g| {
                let lsp = Arc::clone(&lsp);
                scope.spawn(move || {
                    let config = test_config();
                    let mut rng = ChaCha8Rng::seed_from_u64(500 + g as u64);
                    // A momentarily full table is a retryable shed, not
                    // a failure — honest clients wait out the TTL.
                    let deadline = Instant::now() + Duration::from_secs(10);
                    let mut client = loop {
                        match GroupClient::connect(
                            addr,
                            g as u64 + 1,
                            config.clone(),
                            Rect::UNIT,
                            2,
                            &mut rng,
                        ) {
                            Ok(c) => break c,
                            Err(ServerError::Remote {
                                code: ErrorCode::QuotaExceeded,
                                ..
                            }) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(250));
                            }
                            Err(e) => panic!("legit group {g} connect failed: {e}"),
                        }
                    };
                    for q in 0..LEGIT_QUERIES {
                        let users = vec![
                            Point::new(0.05 + 0.11 * g as f64, (q as f64 * 0.037) % 1.0),
                            Point::new(0.9 - 0.13 * g as f64, (q as f64 * 0.053) % 1.0),
                        ];
                        let answer = client
                            .query(&users, &mut rng)
                            .unwrap_or_else(|e| panic!("legit group {g} query {q} failed: {e}"));
                        let oracle = lsp.plaintext_answer(&users, config.k);
                        assert_eq!(answer.len(), oracle.len());
                        for (a, o) in answer.iter().zip(&oracle) {
                            assert!(
                                a.dist(&o.location) < 1e-6,
                                "legit group {g} query {q}: wrong answer under attack"
                            );
                        }
                    }
                    client.goodbye();
                    LEGIT_QUERIES
                })
            })
            .collect();

        for t in attackers {
            runs.extend(t.join().expect("attacker thread panicked").runs);
        }
        for t in legit {
            legit_ok += t.join().expect("legit thread panicked");
        }
        done.store(true, Ordering::Relaxed);
        monitor.join().unwrap();
    });

    assert_eq!(
        runs.len(),
        ATTACKERS * ROUNDS * ppgnn::server::ATTACK_CATALOG.len()
    );
    assert!(runs.len() >= 200, "soak too small: {} runs", runs.len());
    assert_eq!(legit_ok, LEGIT_GROUPS * LEGIT_QUERIES);
    for (attack, outcome) in &runs {
        assert!(
            outcome.contained(),
            "attack {attack} was NOT contained: {outcome:?}"
        );
    }
    assert!(
        max_seen.load(Ordering::Relaxed) <= SESSION_CAP,
        "session table exceeded its cap: {} > {SESSION_CAP}",
        max_seen.load(Ordering::Relaxed)
    );

    let stats = handle.stats();
    assert_eq!(
        stats.worker_panics.load(Ordering::Relaxed),
        0,
        "worker panicked under hostile load"
    );
    assert!(handle.registry().violations() > 0, "gate never fired");
    assert!(
        stats.slow_reaped.load(Ordering::Relaxed) > 0,
        "slowloris never reaped"
    );
    assert!(
        stats.frame_garbage.load(Ordering::Relaxed) > 0,
        "frame garbage never counted"
    );

    // The server is still healthy for a fresh honest session. Right
    // after the soak the table may still hold hostile sessions whose
    // idle TTL has not expired — QuotaExceeded here is the admission
    // control doing its job, so retry past the TTL window.
    let mut rng = ChaCha8Rng::seed_from_u64(999);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        match GroupClient::connect(addr, 4242, test_config(), Rect::UNIT, 2, &mut rng) {
            Ok(c) => break c,
            Err(ServerError::Remote {
                code: ErrorCode::QuotaExceeded,
                ..
            }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => panic!("post-soak connect failed: {e}"),
        }
    };
    let users = vec![Point::new(0.3, 0.3), Point::new(0.7, 0.7)];
    let answer = client.query(&users, &mut rng).expect("post-soak query");
    let oracle = lsp.plaintext_answer(&users, 2);
    for (a, o) in answer.iter().zip(&oracle) {
        assert!(a.dist(&o.location) < 1e-6);
    }
    client.goodbye();
    handle.shutdown();
}

/// Every query-level attack in the catalog individually maps to the
/// expected typed error code.
#[test]
fn each_attack_variant_yields_its_typed_rejection() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let handle = serve_world(lsp, "127.0.0.1:0", hardened(Duration::from_millis(300), 64)).unwrap();
    let addr = handle.local_addr();
    let mut ctx = AttackContext::new(7).unwrap();
    ctx.slow_stall = Duration::from_millis(800);

    let expectations: &[(Attack, MalloryOutcome)] = &[
        (
            Attack::OversizedFrame,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::TruncatedHello,
            MalloryOutcome::TypedError(ErrorCode::MalformedPayload),
        ),
        (
            Attack::GarbageBytes,
            MalloryOutcome::TypedError(ErrorCode::MalformedPayload),
        ),
        (
            Attack::BadVersion,
            MalloryOutcome::TypedError(ErrorCode::MalformedPayload),
        ),
        (
            Attack::UnknownFrameType,
            MalloryOutcome::TypedError(ErrorCode::MalformedPayload),
        ),
        (
            Attack::CorruptChecksum,
            MalloryOutcome::TypedError(ErrorCode::MalformedPayload),
        ),
        (
            Attack::UndersizedDelta,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::ZeroCiphertext,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::OversizedCiphertext,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::NonUnitCiphertext,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::WrongSetCount,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::WrongSetLength,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (
            Attack::ReplayedRequestId,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        (Attack::SessionFlood, MalloryOutcome::AckedAll),
        (Attack::SlowWriter, MalloryOutcome::Disconnected),
        // Four standing queries fit under this server's default cap;
        // the low-cap rejection path gets its own test below.
        (Attack::SubscribeFlood, MalloryOutcome::AckedAll),
        // No admin lane is configured here, so *any* token is forged.
        (
            Attack::ForgedPoiUpdate,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
        // Without a captured token the replay attack degrades to its
        // forged-token probe; the durable idempotency half has its own
        // test below.
        (
            Attack::StaleAdminReplay,
            MalloryOutcome::TypedError(ErrorCode::Violation),
        ),
    ];
    for (i, (attack, expected)) in expectations.iter().enumerate() {
        let outcome = run_attack(*attack, addr, &ctx, 0xc0de + i as u64);
        assert_eq!(&outcome, expected, "attack {attack}");
    }
    handle.shutdown();
}

/// A subscribe flood against a low standing-query cap is turned away
/// with a typed violation before any worker time is spent — and the
/// registry never grows past the cap.
#[test]
fn subscribe_flood_past_the_cap_is_refused() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        max_subscriptions: 2,
        ..hardened(Duration::from_millis(300), 64)
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let mut ctx = AttackContext::new(21).unwrap();
    ctx.flood_subscriptions = 4; // two past the cap

    let outcome = run_attack(Attack::SubscribeFlood, handle.local_addr(), &ctx, 0xf100d);
    assert_eq!(
        outcome,
        MalloryOutcome::TypedError(ErrorCode::Violation),
        "the third subscription must hit the cap"
    );
    let stats = handle.stats();
    assert!(
        stats.subscribe_rejected.load(Ordering::Relaxed) >= 1,
        "cap rejection never counted"
    );
    assert_eq!(
        stats.subscribes_ok.load(Ordering::Relaxed),
        2,
        "exactly the cap's worth of subscriptions granted"
    );
    handle.shutdown();
}

/// The admin lane refuses a wrong token on a dynamic world with a typed
/// violation, and the index version proves nothing was applied.
#[test]
fn forged_poi_update_cannot_mutate_a_dynamic_world() {
    let world = Arc::new(DynamicLsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        admin_token: Some(0x005e_c2e7),
        ..hardened(Duration::from_millis(300), 16)
    };
    let handle = serve_world(Arc::clone(&world), "127.0.0.1:0", config).unwrap();
    let ctx = AttackContext::new(23).unwrap();

    let before = world.version();
    let outcome = run_attack(
        Attack::ForgedPoiUpdate,
        handle.local_addr(),
        &ctx,
        0xbad_70ce,
    );
    assert_eq!(
        outcome,
        MalloryOutcome::TypedError(ErrorCode::Violation),
        "a guessed admin token must be refused"
    );
    assert_eq!(world.version(), before, "forged update mutated the index");
    handle.shutdown();
}

/// Replay of an already-acked admin batch against a durable world: the
/// WAL dedup window answers with the original version (no double
/// apply), and a forged token on the same wire still draws the typed
/// violation — dedup runs after the token gate, never instead of it.
#[test]
fn stale_admin_replay_is_idempotent_on_a_durable_world() {
    let dir = std::env::temp_dir().join(format!("ppgnn-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let token = 0x0dd5_7a1e;
    let config = ServerConfig {
        admin_token: Some(token),
        durability: Some(DurabilityConfig::new(&dir)),
        ..hardened(Duration::from_millis(300), 16)
    };
    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: grid_db(8),
            protocol: test_config(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let mut ctx = AttackContext::new(29).unwrap();
    ctx.admin_token = Some(token);

    let outcome = run_attack(
        Attack::StaleAdminReplay,
        handle.local_addr(),
        &ctx,
        0x2e91a7,
    );
    assert_eq!(
        outcome,
        MalloryOutcome::Idempotent,
        "replay must dedup and the forged token must still be refused"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strikes escalate: a client that keeps violating gets disconnected
/// after `max_strikes`, with a final QuotaExceeded notice.
#[test]
fn repeated_violations_escalate_to_disconnect() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        max_strikes: 3,
        ..hardened(Duration::from_millis(300), 16)
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let ctx = AttackContext::new(9).unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let group_id = 0x5111;
    write_frame(&mut stream, FrameType::Hello, &ctx.hello(group_id).encode()).unwrap();
    let ack = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(ack.frame_type, FrameType::HelloAck);

    // Same violation, repeatedly: one set short of the handshake.
    let mut sets: Vec<Vec<u8>> = ctx.plan.location_sets.iter().map(|s| s.to_wire()).collect();
    sets.pop();
    let mut saw_quota_notice = false;
    let mut violations = 0;
    'outer: for req in 1..=10u32 {
        let payload = QueryPayload {
            group_id,
            request_id: req,
            deadline_ms: 0,
            trace: ppgnn::telemetry::trace::TraceContext::new(1, 1, false),
            location_sets: sets.clone(),
            query: ctx.plan.query.to_wire(),
        }
        .encode();
        if write_frame(&mut stream, FrameType::Query, &payload).is_err() {
            break; // already disconnected
        }
        loop {
            match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
                Ok(frame) if frame.frame_type == FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload).unwrap();
                    match err.code {
                        ErrorCode::Violation => {
                            violations += 1;
                            continue 'outer;
                        }
                        ErrorCode::QuotaExceeded => saw_quota_notice = true,
                        other => panic!("unexpected error code {other:?}"),
                    }
                }
                Ok(frame) if frame.frame_type == FrameType::Goodbye => break 'outer,
                Ok(other) => panic!("unexpected frame {:?}", other.frame_type),
                Err(ServerError::ConnectionClosed) => break 'outer,
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }
    assert_eq!(
        violations, 3,
        "disconnect should land exactly at max_strikes"
    );
    assert!(saw_quota_notice, "no final QuotaExceeded notice");
    assert_eq!(handle.stats().strike_disconnects.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

/// The per-connection token bucket sheds bursts with `Busy` + a retry
/// hint instead of serving them.
#[test]
fn token_bucket_sheds_hello_bursts() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        rate_limit_burst: 2,
        rate_limit_per_sec: 0.5,
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let ctx = AttackContext::new(11).unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut acks = 0;
    let mut sheds = 0;
    for i in 0..4u64 {
        write_frame(&mut stream, FrameType::Hello, &ctx.hello(100 + i).encode()).unwrap();
        let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
        match frame.frame_type {
            FrameType::HelloAck => acks += 1,
            FrameType::Busy => sheds += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(acks, 2, "burst capacity should admit exactly 2");
    assert_eq!(sheds, 2, "the rest of the burst should be shed");
    // Liveness traffic is never rate limited.
    write_frame(&mut stream, FrameType::Ping, &[]).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::Pong);
    assert_eq!(handle.stats().rate_limited.load(Ordering::Relaxed), 2);
    handle.shutdown();
}

/// Session admission: the table rejects past the cap, evicts idle
/// sessions to make room, and reports all of it in `Pong`.
#[test]
fn session_cap_and_ttl_reported_in_pong() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        max_sessions: 2,
        session_idle_ttl: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let ctx = AttackContext::new(13).unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for g in 0..2u64 {
        write_frame(&mut stream, FrameType::Hello, &ctx.hello(g + 1).encode()).unwrap();
        assert_eq!(
            read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .frame_type,
            FrameType::HelloAck
        );
    }
    // Third distinct group: refused while both sessions are live.
    write_frame(&mut stream, FrameType::Hello, &ctx.hello(3).encode()).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::Error);
    let err = ErrorPayload::decode(&frame.payload).unwrap();
    assert_eq!(err.code, ErrorCode::QuotaExceeded);

    // After the TTL, idle sessions are evicted and the Hello goes in.
    std::thread::sleep(Duration::from_millis(400));
    write_frame(&mut stream, FrameType::Hello, &ctx.hello(3).encode()).unwrap();
    assert_eq!(
        read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .frame_type,
        FrameType::HelloAck
    );

    write_frame(&mut stream, FrameType::Ping, &[]).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::Pong);
    let pong = ppgnn::server::PongPayload::decode(&frame.payload).unwrap();
    assert_eq!(pong.sessions, 1);
    assert!(pong.sessions_evicted >= 2, "evictions not reported");
    assert_eq!(pong.sessions_rejected, 1);
    handle.shutdown();
}

/// A handshake below the δ policy floor is a deterministic reject: the
/// client surfaces it immediately instead of burning its retry budget.
#[test]
fn client_fails_fast_on_policy_violation() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        hello_policy: HelloPolicy {
            min_delta: 50, // far above the client's δ=6
            ..HelloPolicy::default()
        },
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let started = Instant::now();
    let err = match GroupClient::connect(
        handle.local_addr(),
        1,
        test_config(),
        Rect::UNIT,
        2,
        &mut rng,
    ) {
        Ok(_) => panic!("handshake should be rejected"),
        Err(e) => e,
    };
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a deterministic violation must not back off: took {:?}",
        started.elapsed()
    );
    assert!(
        matches!(
            err,
            ServerError::Remote {
                code: ErrorCode::Violation,
                ..
            }
        ),
        "wrong error: {err}"
    );
    handle.shutdown();
}

/// The client adopts the server's advertised frame cap at handshake and
/// fails an oversized query locally with the typed `FrameTooLarge` —
/// no bytes shipped, no strike earned.
#[test]
fn client_adopts_server_frame_cap() {
    let lsp = Arc::new(Lsp::new(grid_db(8), test_config()));
    let config = ServerConfig {
        max_payload: 128, // admits the handshake but no real query
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mut client = GroupClient::connect(
        handle.local_addr(),
        1,
        test_config(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .expect("handshake fits the cap");
    assert_eq!(client.server_info().max_payload, 128);
    let users = vec![Point::new(0.2, 0.2), Point::new(0.6, 0.6)];
    let err = client.query(&users, &mut rng).expect_err("query over cap");
    assert!(
        matches!(err, ServerError::FrameTooLarge { max: 128, .. }),
        "wrong error: {err}"
    );
    assert_eq!(handle.registry().violations(), 0, "bytes were shipped");
    handle.shutdown();
}
