//! Redaction golden test for the observability faces added in 0.10:
//! the `/metrics` OpenMetrics scrape body, the `/healthz` JSON, the
//! windowed-snapshot JSON, and the persisted cost-model file.
//!
//! Same contract as `trace_redaction.rs`, same technique: drive real
//! queries with deliberately distinctive coordinates and POI ids, then
//! prove none of that private data survives into any export. The
//! schema makes leaks structurally hard (families, stages, ops, gauges
//! and cost constants are closed enums; values are aggregate integers),
//! so these greps pin the contract from the outside: every face must be
//! float-free (coordinates and distances are the only floats in the
//! pipeline) and must not contain the distinctive inputs.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::{DurabilityConfig, FsyncPolicy, WorldSeed};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Coordinates no duration or count will ever collide with, and POI
/// ids far above any aggregate this run can produce.
const HOT_COORDS: [f64; 4] = [0.123456789, 0.987654321, 0.314159265, 0.271828182];
const POI_ID_BASE: u32 = 900_000_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_redacted(export: &str, face: &str) {
    let bytes = export.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' {
            assert!(
                !(bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()),
                "{face} contains a float-shaped token near byte {i}: {:?}",
                &export[i.saturating_sub(20)..(i + 20).min(export.len())]
            );
        }
    }
    for c in &HOT_COORDS {
        let s = format!("{c}");
        assert!(!export.contains(&s), "{face} leaks coordinate {s}");
        // Digits-only rendering too (floats are already banned above,
        // but a leak could strip the point).
        let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
        assert!(
            !export.contains(&digits),
            "{face} leaks coordinate digits {digits}"
        );
    }
    assert!(
        !export.contains("90000000"),
        "{face} contains a POI-id-sized integer"
    );
}

/// A one-shot `GET` against the metrics listener; returns the status
/// line and the body (the listener closes after each response).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn observability_faces_carry_no_location_or_identifier_data() {
    let dir = tmp_dir("redaction");
    let protocol = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: true,
        ..PpgnnConfig::fast_test()
    };
    // A 6x6 grid of POIs whose ids and coordinates are unmistakable if
    // they ever show up in an export face.
    let pois: Vec<Poi> = (0..36)
        .map(|i| {
            Poi::new(
                POI_ID_BASE + i,
                Point::new(
                    HOT_COORDS[i as usize % 4] * 0.9 + (i % 6) as f64 * 0.016,
                    HOT_COORDS[(i as usize + 1) % 4] * 0.9 + (i / 6) as f64 * 0.016,
                ),
            )
        })
        .collect();
    let config = ServerConfig::builder()
        .metrics_addr(Some("127.0.0.1:0".into()))
        .slo(Some(SloConfig::default()))
        .durability(Some(DurabilityConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            checkpoint_every_ops: 1000,
        }))
        .build()
        .unwrap();
    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: pois,
            protocol: protocol.clone(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let metrics_addr = handle.metrics_addr().expect("metrics listener bound");

    let mut rng = ChaCha8Rng::seed_from_u64(0x0b5e);
    let mut client =
        GroupClient::connect(handle.local_addr(), 7, protocol, Rect::UNIT, 3, &mut rng)
            .expect("connect");
    for q in 0..3 {
        let users = vec![
            Point::new(HOT_COORDS[q % 4], HOT_COORDS[(q + 1) % 4]),
            Point::new(HOT_COORDS[(q + 2) % 4], HOT_COORDS[(q + 3) % 4]),
            Point::new(HOT_COORDS[q % 4] * 0.5, 0.123456789),
        ];
        client.query(&users, &mut rng).expect("query");
    }
    client.goodbye();
    // Fold the run into the window ring and cost model without waiting
    // out the 1 Hz ticker.
    handle.flush_windows();

    // Face 1: the OpenMetrics scrape body.
    let (status, body) = http_get(metrics_addr, "/metrics");
    assert!(status.contains("200"), "scrape failed: {status}");
    assert!(body.ends_with("# EOF\n"), "scrape body must end with # EOF");
    for fam in [
        "ppgnn_up",
        "ppgnn_stage_latency_us",
        "ppgnn_ops",
        "ppgnn_window_stage_latency_us",
        "ppgnn_cost",
        "ppgnn_slo_burn_permille",
    ] {
        assert!(
            body.contains(&format!("# TYPE {fam} ")),
            "scrape body missing family {fam}"
        );
    }
    assert_redacted(&body, "/metrics scrape body");

    // Face 2: the health endpoint JSON.
    let (status, health) = http_get(metrics_addr, "/healthz");
    assert!(status.contains("200"), "healthz failed: {status}");
    assert_redacted(&health, "/healthz body");

    // Face 3: the windowed snapshot JSON (the stats-probe face).
    let windowed = handle.windowed_snapshot(usize::MAX);
    assert!(
        windowed.stages.iter().any(|s| s.count > 0),
        "window ring captured no stage samples"
    );
    assert_redacted(&windowed.to_json(), "windowed snapshot JSON");

    // Face 4: the cost model, both its JSON face and the file persisted
    // next to the WAL on shutdown.
    let model = handle.cost_model();
    assert!(!model.is_empty(), "cost model learned nothing from the run");
    assert_redacted(&model.to_json(), "cost model JSON");

    handle.shutdown();
    let persisted = std::fs::read_to_string(dir.join("costmodel.v1"))
        .expect("shutdown must persist the cost model next to the WAL");
    assert!(
        persisted.starts_with("ppgnn-costmodel v1\n"),
        "persisted model header missing: {persisted:?}"
    );
    assert_redacted(&persisted, "persisted cost model");
    let _ = std::fs::remove_dir_all(&dir);
}
