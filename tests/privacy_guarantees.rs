//! Privacy guarantee verification (Definition 2.2 / Theorems 4.3 & 5.2 /
//! Table 4): structural checks plus *live attacks* against every
//! approach, matching the paper's classification exactly.

use ppgnn::baselines::attacks::{glp_centroid_attack, ippf_chain_attack};
use ppgnn::baselines::{Glp, Ippf};
use ppgnn::core::attack::{feasible_region_fraction, InequalitySystem};
use ppgnn::core::{run_ppgnn_with_keys, Variant};
use ppgnn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn db() -> Vec<Poi> {
    ppgnn::datagen::sequoia_like(5_000, 11)
}

/// Privacy I (structural): each user's message to LSP contains exactly
/// d locations, the real one at a position LSP cannot distinguish —
/// verified here by checking the real location is present and the rest
/// are independent dummies.
#[test]
fn privacy1_location_hidden_among_dummies() {
    use ppgnn::core::messages::LocationSetMessage;
    // Reconstruct what LSP sees by intercepting through the Lsp API: we
    // run the user-side generation logic indirectly — a location set of
    // size d containing the real point exactly once (w.h.p. dummies differ).
    let d = 25;
    let real = Point::new(0.31415, 0.92653);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let gen = ppgnn::datagen::DummyGenerator::uniform_unit();
    let mut locations = gen.generate(d - 1, &mut rng);
    locations.insert(7, real);
    let msg = LocationSetMessage {
        user_index: 0,
        locations,
    };
    assert_eq!(msg.locations.len(), d);
    let occurrences = msg
        .locations
        .iter()
        .filter(|l| l.dist(&real) < 1e-12)
        .count();
    assert_eq!(occurrences, 1, "the real location appears exactly once");
}

/// Privacy II/III (structural + crypto): LSP computes δ' ≥ δ answers but
/// the user can decrypt only the selected one — decrypting the "wrong"
/// column's worth of information is impossible because LSP only ever
/// returns the single homomorphically selected column.
#[test]
fn privacy3_only_requested_answer_decryptable() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let pois = db();
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let cfg = PpgnnConfig {
        k: 4,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois.clone(), cfg);
    let users = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)];
    let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
    // The answer has exactly k POIs — not δ'·k (the superset IPPF leaks).
    assert_eq!(run.answer.len(), 4);
    // And the transcript back from LSP is m ciphertexts, not δ'·m:
    // 128-bit key, k=4 ⇒ 5 records ⇒ m = 5 (one record per integer),
    // each ε₁ ciphertext 32 B. The LSP→user traffic must be m·32 B.
    let expected_reply_bytes = 5 * 32;
    assert!(
        run.report.comm_bytes_user_lsp as usize >= expected_reply_bytes,
        "reply present"
    );
}

/// Privacy IV (Theorem 5.2): with sanitation, the inequality attack by
/// n−1 colluders stays above θ0 for every target, on real protocol runs.
#[test]
fn privacy4_sanitized_runs_resist_full_collusion() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let pois = db();
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let theta0 = 0.05;
    let cfg = PpgnnConfig {
        k: 8,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: true,
        theta0,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois.clone(), cfg);
    let mut workload = ppgnn::datagen::Workload::unit(13);
    let mut checked = 0;
    for _ in 0..3 {
        let users = workload.next_group(4);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        let answer: Vec<Poi> = run
            .answer
            .iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, *p))
            .collect();
        for target in 0..users.len() {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let theta = feasible_region_fraction(
                &answer,
                &colluders,
                Aggregate::Sum,
                &Rect::UNIT,
                20_000,
                &mut rng,
            );
            // γ = 0.05 Type-I slack: allow the estimate to brush θ0.
            assert!(
                theta > theta0 * 0.7,
                "target {target} exposed at θ = {theta} (θ0 = {theta0})"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 12);
}

/// Without sanitation, a long ranked answer frequently *does* expose a
/// user — demonstrating the attack the paper defends against.
#[test]
fn privacy4_unsanitized_runs_are_attackable() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let pois = db();
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let theta0 = 0.05;
    let cfg = PpgnnConfig {
        k: 16,
        d: 4,
        delta: 8,
        keysize: 128,
        sanitize: false,
        theta0,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois.clone(), cfg);
    let mut workload = ppgnn::datagen::Workload::unit(14);
    let mut exposures = 0;
    for _ in 0..3 {
        let users = workload.next_group(4);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        let answer: Vec<Poi> = run
            .answer
            .iter()
            .enumerate()
            .map(|(i, p)| Poi::new(i as u32, *p))
            .collect();
        for target in 0..users.len() {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let theta = feasible_region_fraction(
                &answer,
                &colluders,
                Aggregate::Sum,
                &Rect::UNIT,
                20_000,
                &mut rng,
            );
            if theta <= theta0 {
                exposures += 1;
            }
        }
    }
    assert!(
        exposures > 0,
        "16 ranked POIs against 3 colluders should expose someone"
    );
}

/// The colluders' region always contains the truth: the attack is sound,
/// so sanitation is *necessary*, not paranoid.
#[test]
fn attack_region_always_contains_true_location() {
    let _rng = ChaCha8Rng::seed_from_u64(5);
    let pois = db();
    let mut workload = ppgnn::datagen::Workload::unit(15);
    for _ in 0..5 {
        let users = workload.next_group(3);
        let ranked = ppgnn::geo::group_knn_brute_force(&pois, &users, 10, Aggregate::Sum);
        for target in 0..users.len() {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let system = InequalitySystem::new(&ranked, &colluders, Aggregate::Sum);
            assert!(system.satisfies_all(&users[target]));
        }
    }
}

/// Table 4, IPPF row: Privacy III broken (superset) and Privacy IV broken
/// (chain attack) on a real run.
#[test]
fn ippf_breaks_privacy3_and_4() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let pois = db();
    let ippf = Ippf::new(pois.clone());
    let users = vec![
        Point::new(0.1, 0.15),
        Point::new(0.85, 0.8),
        Point::new(0.4, 0.6),
    ];
    let run = ippf.query(&users, 4, &mut rng);
    // Privacy III: more POI information than the k requested reached users.
    assert!(
        run.report.counters["candidate_pois"] > 4,
        "candidate superset leaks database content"
    );
    // Privacy IV: the chain neighbours of u1 observe dist(p, u1) for every
    // candidate and recover u1.
    let victim = users[1];
    let observed: Vec<(Point, f64)> = run.answer.iter().map(|p| (*p, p.dist(&victim))).collect();
    if let Some(recovered) = ippf_chain_attack(&observed) {
        assert!(
            recovered.dist(&victim) < 1e-6,
            "chain attack recovers the victim"
        );
    } else {
        panic!("attack had enough candidates but was degenerate");
    }
}

/// Table 4, GLP row: Privacy II broken (LSP sees the query point and the
/// answer) and Privacy IV broken (centroid recovery) on a real run.
#[test]
fn glp_breaks_privacy2_and_4() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let pois = db();
    let glp = Glp::new(pois, 128);
    let users = vec![
        Point::new(0.22, 0.71),
        Point::new(0.64, 0.28),
        Point::new(0.47, 0.55),
        Point::new(0.81, 0.9),
    ];
    let keys: Vec<_> = (0..4)
        .map(|_| ppgnn::paillier::generate_keypair(128, &mut rng))
        .collect();
    let run = glp.query(&users, 3, Some(&keys), &mut rng);
    // Privacy II: the LSP link carries the plaintext centroid (16 bytes
    // up) and the plaintext answer down — no ciphertext traffic at all.
    assert!(run.report.comm_bytes_user_lsp > 0);
    // Privacy IV: exact recovery from the centroid.
    let centroid = Point::centroid(&users);
    let recovered = glp_centroid_attack(centroid, &users[1..]);
    assert!(recovered.dist(&users[0]) < 1e-9);
}

/// PPGNN's intra-group traffic is tiny (positions + final answer only) —
/// the structural reason full collusion learns nothing before the answer
/// arrives (§5's "first observation").
#[test]
fn intra_group_traffic_carries_no_locations() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let pois = db();
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let cfg = PpgnnConfig {
        k: 4,
        d: 6,
        delta: 12,
        keysize: 128,
        sanitize: false,
        variant: Variant::Plain,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois, cfg);
    let users = vec![
        Point::new(0.3, 0.3),
        Point::new(0.4, 0.4),
        Point::new(0.5, 0.5),
    ];
    let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
    // Intra-group: (n−1) position scalars + (n−1) answer broadcasts.
    let max_expected = 2 * (4 + (4 + 8 * 4));
    assert!(
        run.report.comm_bytes_intra_group as usize <= max_expected,
        "intra-group bytes {} exceed the position+answer budget {max_expected}",
        run.report.comm_bytes_intra_group
    );
}
