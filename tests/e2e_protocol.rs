//! End-to-end protocol correctness across crates: the decrypted answer of
//! every variant must equal the plaintext kGNN answer (prefix) computed
//! directly — for every aggregate function and a spread of parameters.

use ppgnn::core::{run_ppgnn, run_ppgnn_with_keys, Variant};
use ppgnn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn db(size: usize) -> Vec<Poi> {
    ppgnn::datagen::sequoia_like(size, 42)
}

fn assert_prefix_of_plaintext(
    run: &ppgnn::core::ProtocolRun,
    lsp: &Lsp,
    users: &[Point],
    k: usize,
) {
    let expected = lsp.plaintext_answer(users, k);
    assert!(run.answer.len() <= expected.len());
    for (got, want) in run.answer.iter().zip(&expected) {
        assert!(
            got.dist(&want.location) < 1e-6,
            "answer must be a prefix of the plaintext kGNN"
        );
    }
}

#[test]
fn all_variants_match_plaintext_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pois = db(3_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let users = vec![
        Point::new(0.3, 0.4),
        Point::new(0.5, 0.2),
        Point::new(0.45, 0.6),
    ];
    for variant in [Variant::Plain, Variant::Opt, Variant::Naive] {
        let cfg = PpgnnConfig {
            k: 5,
            d: 5,
            delta: 20,
            keysize: 128,
            sanitize: false,
            variant,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert_eq!(run.answer.len(), 5, "{variant:?}");
        assert_prefix_of_plaintext(&run, &lsp, &users, 5);
    }
}

#[test]
fn every_aggregate_function_works() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let pois = db(2_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let users = vec![Point::new(0.2, 0.8), Point::new(0.7, 0.7)];
    for aggregate in Aggregate::ALL {
        let cfg = PpgnnConfig {
            k: 4,
            d: 4,
            delta: 10,
            keysize: 128,
            sanitize: false,
            aggregate,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert_prefix_of_plaintext(&run, &lsp, &users, 4);
    }
}

#[test]
fn group_sizes_from_one_to_twelve() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let pois = db(2_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let mut workload = ppgnn::datagen::Workload::unit(9);
    for n in [1usize, 2, 3, 5, 8, 12] {
        let cfg = PpgnnConfig {
            k: 3,
            d: 4,
            delta: 4, // δ = d keeps n = 1 feasible; larger n just exceeds it
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let users = workload.next_group(n);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert_prefix_of_plaintext(&run, &lsp, &users, 3);
        assert!(run.delta_prime >= 4, "n={n}");
    }
}

#[test]
fn delta_prime_meets_delta_across_parameters() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let pois = db(1_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let mut workload = ppgnn::datagen::Workload::unit(10);
    for (d, delta) in [(4, 8), (5, 25), (6, 30), (8, 60)] {
        let cfg = PpgnnConfig {
            k: 2,
            d,
            delta,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let users = workload.next_group(3);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert!(
            run.delta_prime >= delta,
            "d={d} δ={delta}: δ'={}",
            run.delta_prime
        );
        assert_prefix_of_plaintext(&run, &lsp, &users, 2);
    }
}

#[test]
fn k_larger_than_typical_packing_capacity() {
    // k = 20 at a 128-bit key forces a multi-integer answer column
    // (capacity 1 record per integer at 128 bits): m > 1 exercises the
    // multi-row private selection.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let pois = db(1_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let cfg = PpgnnConfig {
        k: 20,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois.clone(), cfg);
    let users = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.6)];
    let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
    assert_eq!(run.answer.len(), 20);
    assert_prefix_of_plaintext(&run, &lsp, &users, 20);
}

#[test]
fn fresh_keys_every_run_also_works() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let pois = db(500);
    let cfg = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 96,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois, cfg);
    let users = vec![Point::new(0.1, 0.2), Point::new(0.3, 0.4)];
    let run = run_ppgnn(&lsp, &users, &mut rng).unwrap();
    assert_eq!(run.answer.len(), 2);
}

#[test]
fn opt_variant_multi_row_and_padding() {
    // δ' = 10 with ω = round(√5) = 2 ⇒ block 5 — and with k = 9 at
    // 192 bits m = 5: exercises phase-2 across several rows plus the
    // zero-column padding path (2·5 = 10 exactly) and a non-square 11.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let pois = db(800);
    let keys = ppgnn::paillier::generate_keypair(192, &mut rng);
    for delta in [10usize, 11] {
        let cfg = PpgnnConfig {
            k: 9,
            d: 4,
            delta,
            keysize: 192,
            sanitize: false,
            variant: Variant::Opt,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let users = vec![Point::new(0.25, 0.35), Point::new(0.75, 0.65)];
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert_eq!(run.answer.len(), 9, "delta={delta}");
        assert_prefix_of_plaintext(&run, &lsp, &users, 9);
    }
}

#[test]
fn sanitized_answer_is_exact_prefix() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let pois = db(5_000);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let cfg = PpgnnConfig {
        k: 10,
        d: 4,
        delta: 12,
        keysize: 128,
        sanitize: true,
        theta0: 0.05,
        ..PpgnnConfig::fast_test()
    };
    let lsp = Lsp::new(pois.clone(), cfg);
    let mut workload = ppgnn::datagen::Workload::unit(77);
    for _ in 0..3 {
        let users = workload.next_group(4);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        assert!(
            run.pois_returned >= 1,
            "at least the top POI is always safe"
        );
        assert!(run.pois_returned <= 10);
        assert_prefix_of_plaintext(&run, &lsp, &users, 10);
    }
}

#[test]
fn communication_accounting_matches_structure() {
    // The ledger's byte totals must reflect the protocol structure:
    // OPT sends fewer indicator bytes than Plain at larger δ'.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let pois = db(500);
    let keys = ppgnn::paillier::generate_keypair(128, &mut rng);
    let users = vec![Point::new(0.4, 0.4), Point::new(0.6, 0.5)];
    let mut comm = std::collections::HashMap::new();
    for variant in [Variant::Plain, Variant::Opt] {
        let cfg = PpgnnConfig {
            k: 2,
            d: 10,
            delta: 100,
            keysize: 128,
            sanitize: false,
            variant,
            ..PpgnnConfig::fast_test()
        };
        let lsp = Lsp::new(pois.clone(), cfg);
        let run = run_ppgnn_with_keys(&lsp, &users, Some(&keys), &mut rng).unwrap();
        comm.insert(format!("{variant:?}"), run.report.comm_bytes_total);
    }
    assert!(
        comm["Opt"] < comm["Plain"],
        "OPT must beat Plain at δ' ≈ 100: {comm:?}"
    );
}
