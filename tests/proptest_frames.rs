//! Property tests of the frame layer and the wire decoders underneath
//! it: arbitrary byte mutations (and truncations) of valid frames must
//! never panic any decoder — every malformed input maps to a typed
//! error or, by luck, another valid message.

use std::sync::OnceLock;

use ppgnn::prelude::*;
use ppgnn::server::frame::{
    read_frame, write_frame, AnswerPayload, BusyPayload, ErrorPayload, FrameType, HelloAckPayload,
    HelloPayload, QueryPayload, DEFAULT_MAX_PAYLOAD,
};
use ppgnn::server::ErrorCode;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The decode context valid query frames in the corpus were built under.
fn wire_context() -> ppgnn::core::wire::WireContext {
    ppgnn::core::wire::WireContext {
        key_bits: 128,
        two_phase_omega: None,
        has_partition: true,
    }
}

/// One valid frame of every type, built once: the mutation targets.
fn corpus() -> &'static Vec<(FrameType, Vec<u8>)> {
    static CORPUS: OnceLock<Vec<(FrameType, Vec<u8>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(0xf2a3e);
        let config = PpgnnConfig {
            k: 2,
            d: 3,
            delta: 6,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let mut session = PpgnnSession::new(128, &mut rng);
        let users = vec![Point::new(0.2, 0.3), Point::new(0.6, 0.5)];
        let plan = session.plan(&config, Rect::UNIT, &users, &mut rng).unwrap();
        let query = QueryPayload {
            group_id: 7,
            request_id: 1,
            deadline_ms: 1000,
            location_sets: plan.location_sets.iter().map(|s| s.to_wire()).collect(),
            query: plan.query.to_wire(),
        };
        let payloads = vec![
            (
                FrameType::Hello,
                HelloPayload {
                    group_id: 7,
                    key_bits: 128,
                    variant: 0,
                    omega: 0,
                    has_partition: true,
                }
                .encode(),
            ),
            (
                FrameType::HelloAck,
                HelloAckPayload {
                    group_id: 7,
                    database_size: 100,
                    max_payload: 1 << 20,
                    workers: 4,
                }
                .encode(),
            ),
            (FrameType::Query, query.encode()),
            (
                FrameType::Answer,
                AnswerPayload {
                    request_id: 1,
                    two_phase: false,
                    replayed: false,
                    answer: vec![3; 64],
                }
                .encode(),
            ),
            (
                FrameType::Busy,
                BusyPayload {
                    request_id: 1,
                    retry_after_ms: 50,
                }
                .encode(),
            ),
            (
                FrameType::Error,
                ErrorPayload {
                    request_id: 1,
                    code: ErrorCode::Protocol,
                    message: "nope".into(),
                }
                .encode(),
            ),
            (FrameType::Goodbye, Vec::new()),
        ];
        payloads
            .into_iter()
            .map(|(t, p)| {
                let mut framed = Vec::new();
                write_frame(&mut framed, t, &p).unwrap();
                (t, framed)
            })
            .collect()
    })
}

/// Feeds possibly-corrupt frame bytes through every decode layer a
/// server or client would run. Only panics matter; errors are expected.
fn exercise_decoders(bytes: &[u8]) {
    let Ok(frame) = read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD) else {
        return;
    };
    match frame.frame_type {
        FrameType::Hello => {
            let _ = HelloPayload::decode(&frame.payload);
        }
        FrameType::HelloAck => {
            let _ = HelloAckPayload::decode(&frame.payload);
        }
        FrameType::Query => {
            if let Ok(q) = QueryPayload::decode(&frame.payload) {
                // The inner blobs go through the hardened wire decoders.
                let _ = ppgnn::core::messages::QueryMessage::from_wire(&q.query, &wire_context());
                for set in &q.location_sets {
                    let _ = ppgnn::core::messages::LocationSetMessage::from_wire(set);
                }
            }
        }
        FrameType::Answer => {
            let _ = AnswerPayload::decode(&frame.payload);
        }
        FrameType::Busy => {
            let _ = BusyPayload::decode(&frame.payload);
        }
        FrameType::Error => {
            let _ = ErrorPayload::decode(&frame.payload);
        }
        FrameType::Goodbye | FrameType::Ping | FrameType::Pong => {}
    }
}

proptest! {
    /// Flip one byte anywhere in a valid frame: no decoder may panic.
    #[test]
    fn single_byte_mutations_never_panic(
        which in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let mut bytes = frame.clone();
        let i = pos.index(bytes.len());
        bytes[i] ^= xor;
        exercise_decoders(&bytes);
    }

    /// Mutate a whole window of bytes: no decoder may panic.
    #[test]
    fn window_mutations_never_panic(
        which in any::<prop::sample::Index>(),
        start in any::<prop::sample::Index>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let mut bytes = frame.clone();
        let s = start.index(bytes.len());
        for (off, g) in garbage.iter().enumerate() {
            if s + off < bytes.len() {
                bytes[s + off] = *g;
            }
        }
        exercise_decoders(&bytes);
    }

    /// Truncate anywhere: decoders report closure/truncation, no panic.
    #[test]
    fn truncations_never_panic(
        which in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let bytes = &frame[..cut.index(frame.len())];
        exercise_decoders(bytes);
    }

    /// Pure garbage streams never panic the frame reader.
    #[test]
    fn garbage_streams_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        exercise_decoders(&bytes);
    }
}
