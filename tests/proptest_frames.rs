//! Property tests of the frame layer and the wire decoders underneath
//! it: arbitrary byte mutations (and truncations) of valid frames must
//! never panic any decoder — every malformed input maps to a typed
//! error or, by luck, another valid message. A second, live-server
//! property drives the mutated bytes at a real TCP server and demands
//! a typed reply or a clean disconnect, never a wedged connection.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::frame::{
    read_frame, write_frame, write_frame_padded, AnswerPayload, BusyPayload, ErrorPayload,
    FrameType, HelloAckPayload, HelloPayload, PoiUpdateAckPayload, PoiUpdatePayload, QueryPayload,
    StatsReplyPayload, SubscriptionKind, SubscriptionUpdatePayload, TraceReplyPayload,
    UnsubscribePayload, DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
};
use ppgnn::server::{serve_world, ErrorCode, ServerConfig, ServerError, ServerHandle};
use ppgnn::telemetry::trace::{TraceContext, Tracer, TracerConfig, TRACE_CONTEXT_BYTES};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The decode context valid query frames in the corpus were built under.
fn wire_context() -> ppgnn::core::wire::WireContext {
    ppgnn::core::wire::WireContext {
        key_bits: 128,
        two_phase_omega: None,
        has_partition: true,
    }
}

/// One valid frame of every type, built once: the mutation targets.
fn corpus() -> &'static Vec<(FrameType, Vec<u8>)> {
    static CORPUS: OnceLock<Vec<(FrameType, Vec<u8>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(0xf2a3e);
        let config = PpgnnConfig {
            k: 2,
            d: 3,
            delta: 6,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let mut session = PpgnnSession::new(128, &mut rng);
        let users = vec![Point::new(0.2, 0.3), Point::new(0.6, 0.5)];
        let plan = session.plan(&config, Rect::UNIT, &users, &mut rng).unwrap();
        let query = QueryPayload {
            group_id: 7,
            request_id: 1,
            deadline_ms: 1000,
            trace: TraceContext::new(0xfeed_beef, 0xabc, true),
            location_sets: plan.location_sets.iter().map(|s| s.to_wire()).collect(),
            query: plan.query.to_wire(),
        };
        // A real kept segment, so TraceReply mutations chew on
        // realistic span tables rather than an empty payload.
        let tracer = Tracer::new();
        tracer.configure(&TracerConfig {
            enabled: true,
            slow_us: 0,
            keep_permille: 1000,
            ..TracerConfig::default()
        });
        let (tctx, handle) = tracer.start();
        drop(tracer.resume(&tctx)); // a second, error-flagged segment
        handle.unwrap().finish();
        let trace_reply = TraceReplyPayload {
            segments: tracer.drain(),
        };
        let payloads = vec![
            (
                FrameType::Hello,
                HelloPayload {
                    group_id: 7,
                    key_bits: 128,
                    variant: 0,
                    omega: 0,
                    has_partition: true,
                    n_users: 2,
                    delta: 6,
                    k: 2,
                    d: 3,
                }
                .encode(),
            ),
            (
                FrameType::HelloAck,
                HelloAckPayload {
                    group_id: 7,
                    database_size: 100,
                    max_payload: 1 << 20,
                    workers: 4,
                    epoch: 0x5eed_0001,
                    shape_mode: 1,
                    answer_target: 1024,
                    control_target: 576,
                    latency_quantum_ms: 200,
                }
                .encode(),
            ),
            (FrameType::Query, query.encode()),
            (
                FrameType::Answer,
                AnswerPayload {
                    request_id: 1,
                    two_phase: false,
                    replayed: false,
                    answer: vec![3; 64],
                }
                .encode(),
            ),
            (
                FrameType::Busy,
                BusyPayload {
                    request_id: 1,
                    retry_after_ms: 50,
                }
                .encode(),
            ),
            (
                FrameType::Error,
                ErrorPayload {
                    request_id: 1,
                    code: ErrorCode::Protocol,
                    message: "nope".into(),
                }
                .encode(),
            ),
            (FrameType::Goodbye, Vec::new()),
            (FrameType::TraceFetch, Vec::new()),
            (
                FrameType::TraceReply,
                trace_reply.encode(DEFAULT_MAX_PAYLOAD),
            ),
            // The v6 live-world lanes. Subscribe shares QueryPayload,
            // so its mutations also chew on the crypto wire decoders.
            (FrameType::Subscribe, query.encode()),
            (
                FrameType::PoiUpdate,
                PoiUpdatePayload {
                    admin_token: 0x000A_D000_0001,
                    request_id: 3,
                    ops: vec![
                        ppgnn::geo::PoiOp::Insert(Poi::new(900, Point::new(0.1, 0.9))),
                        ppgnn::geo::PoiOp::Remove(17),
                    ],
                }
                .encode(),
            ),
            (
                FrameType::PoiUpdateAck,
                PoiUpdateAckPayload {
                    request_id: 3,
                    version: 41,
                    applied: 2,
                    invalidated: 1,
                }
                .encode(),
            ),
            (
                FrameType::SubscriptionUpdate,
                SubscriptionUpdatePayload {
                    request_id: 1,
                    kind: SubscriptionKind::Invalidated,
                    version: 42,
                    margin: 2.5e-4,
                    drift_scale: 2,
                }
                .encode(),
            ),
            (
                FrameType::Unsubscribe,
                UnsubscribePayload {
                    group_id: 7,
                    request_id: 1,
                }
                .encode(),
            ),
        ];
        payloads
            .into_iter()
            .map(|(t, p)| {
                let mut framed = Vec::new();
                write_frame(&mut framed, t, &p).unwrap();
                (t, framed)
            })
            .collect()
    })
}

/// Feeds possibly-corrupt frame bytes through every decode layer a
/// server or client would run. Only panics matter; errors are expected.
fn exercise_decoders(bytes: &[u8]) {
    let Ok(frame) = read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD) else {
        return;
    };
    match frame.frame_type {
        FrameType::Hello => {
            let _ = HelloPayload::decode(&frame.payload);
        }
        FrameType::HelloAck => {
            let _ = HelloAckPayload::decode(&frame.payload);
        }
        FrameType::Query | FrameType::Subscribe => {
            if let Ok(q) = QueryPayload::decode(&frame.payload) {
                // The inner blobs go through the hardened wire decoders.
                let _ = ppgnn::core::messages::QueryMessage::from_wire(&q.query, &wire_context());
                for set in &q.location_sets {
                    let _ = ppgnn::core::messages::LocationSetMessage::from_wire(set);
                }
            }
        }
        FrameType::Answer => {
            let _ = AnswerPayload::decode(&frame.payload);
        }
        FrameType::Busy => {
            let _ = BusyPayload::decode(&frame.payload);
        }
        FrameType::Error => {
            let _ = ErrorPayload::decode(&frame.payload);
        }
        FrameType::StatsReply => {
            let _ = StatsReplyPayload::decode(&frame.payload);
        }
        FrameType::TraceReply => {
            let _ = TraceReplyPayload::decode(&frame.payload);
        }
        FrameType::PoiUpdate => {
            let _ = PoiUpdatePayload::decode(&frame.payload);
        }
        FrameType::PoiUpdateAck => {
            let _ = PoiUpdateAckPayload::decode(&frame.payload);
        }
        FrameType::SubscriptionUpdate => {
            let _ = SubscriptionUpdatePayload::decode(&frame.payload);
        }
        FrameType::Unsubscribe => {
            let _ = UnsubscribePayload::decode(&frame.payload);
        }
        FrameType::Goodbye
        | FrameType::Ping
        | FrameType::Pong
        | FrameType::Stats
        | FrameType::TraceFetch => {}
    }
}

proptest! {
    /// Flip one byte anywhere in a valid frame: no decoder may panic.
    #[test]
    fn single_byte_mutations_never_panic(
        which in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let mut bytes = frame.clone();
        let i = pos.index(bytes.len());
        bytes[i] ^= xor;
        exercise_decoders(&bytes);
    }

    /// Mutate a whole window of bytes: no decoder may panic.
    #[test]
    fn window_mutations_never_panic(
        which in any::<prop::sample::Index>(),
        start in any::<prop::sample::Index>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let mut bytes = frame.clone();
        let s = start.index(bytes.len());
        for (off, g) in garbage.iter().enumerate() {
            if s + off < bytes.len() {
                bytes[s + off] = *g;
            }
        }
        exercise_decoders(&bytes);
    }

    /// Truncate anywhere: decoders report closure/truncation, no panic.
    #[test]
    fn truncations_never_panic(
        which in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let bytes = &frame[..cut.index(frame.len())];
        exercise_decoders(bytes);
    }

    /// Pure garbage streams never panic the frame reader.
    #[test]
    fn garbage_streams_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        exercise_decoders(&bytes);
    }
}

// A second block: the trace-context properties pushed the first one
// past the proptest! macro's recursion depth.
proptest! {
    /// Any valid v5 trace context survives the wire byte-identically:
    /// id, parent span, and sampling bit all round-trip.
    #[test]
    fn trace_context_round_trips(
        trace_id in 1u64..(1 << 63),
        parent_span in 1u64..u64::MAX,
        sampled in any::<bool>(),
    ) {
        let ctx = TraceContext::new(trace_id, parent_span, sampled);
        let back = TraceContext::from_wire(&ctx.to_wire()).unwrap();
        prop_assert_eq!(back, ctx);
        prop_assert_eq!(back.trace_id(), trace_id);
        prop_assert_eq!(back.parent_span(), parent_span);
        prop_assert_eq!(back.sampled(), sampled);
    }

    /// Arbitrary header bytes decode to a context or a typed error —
    /// never a panic — and anything that decodes re-encodes stably.
    #[test]
    fn arbitrary_trace_headers_decode_or_typed_error(
        bytes in proptest::collection::vec(any::<u8>(), 0..2 * TRACE_CONTEXT_BYTES),
    ) {
        if let Ok(ctx) = TraceContext::from_wire(&bytes) {
            prop_assert_eq!(ctx.to_wire().as_slice(), &bytes[..TRACE_CONTEXT_BYTES]);
            prop_assert!(ctx.trace_id() != 0);
            prop_assert!(ctx.parent_span() != 0);
        }
    }

    /// Corrupting the trace-context field of a valid query frame gives
    /// a successful decode or a typed error, never a panic; the rest of
    /// the payload decode is unaffected by trace-header garbage.
    #[test]
    fn corrupted_query_trace_headers_never_panic(
        garbage in proptest::collection::vec(any::<u8>(), TRACE_CONTEXT_BYTES),
    ) {
        let corpus = corpus();
        let (_, framed) = corpus
            .iter()
            .find(|(t, _)| *t == FrameType::Query)
            .expect("query frame in corpus");
        let frame = read_frame(&mut &framed[..], DEFAULT_MAX_PAYLOAD).unwrap();
        let mut payload = frame.payload.clone();
        // The context sits after group_id(8) + request_id(4) + deadline(4).
        payload[16..16 + TRACE_CONTEXT_BYTES].copy_from_slice(&garbage);
        match QueryPayload::decode(&payload) {
            Ok(q) => {
                let wire = q.trace.to_wire();
                prop_assert_eq!(wire.as_slice(), garbage.as_slice());
            }
            Err(e) => prop_assert!(matches!(e, ServerError::Malformed(_))),
        }
    }
}

// The v6 live-world payloads: arbitrary field values must round-trip
// byte-exactly through their codecs.
proptest! {
    /// Any mutation batch — inserts and removes, any ids, any
    /// coordinates — survives the wire unchanged.
    #[test]
    fn poi_update_round_trips(
        admin_token in any::<u64>(),
        request_id in any::<u32>(),
        raw_ops in proptest::collection::vec(
            (any::<bool>(), any::<u32>(), -1.0f64..2.0, -1.0f64..2.0),
            0..16,
        ),
    ) {
        let ops = raw_ops
            .into_iter()
            .map(|(insert, id, x, y)| {
                if insert {
                    ppgnn::geo::PoiOp::Insert(Poi::new(id, Point::new(x, y)))
                } else {
                    ppgnn::geo::PoiOp::Remove(id)
                }
            })
            .collect();
        let p = PoiUpdatePayload { admin_token, request_id, ops };
        prop_assert_eq!(PoiUpdatePayload::decode(&p.encode()).unwrap(), p);
    }

    /// The ack lane round-trips for any counters.
    #[test]
    fn poi_update_ack_round_trips(
        request_id in any::<u32>(),
        version in any::<u64>(),
        applied in any::<u32>(),
        invalidated in any::<u32>(),
    ) {
        let p = PoiUpdateAckPayload { request_id, version, applied, invalidated };
        prop_assert_eq!(PoiUpdateAckPayload::decode(&p.encode()).unwrap(), p);
    }

    /// Subscription pushes round-trip for every kind and any margin a
    /// server can legitimately compute (finite or the tiny-database
    /// infinity — never NaN).
    #[test]
    fn subscription_update_round_trips(
        request_id in any::<u32>(),
        kind_tag in 0usize..3,
        version in any::<u64>(),
        finite_margin in 0.0f64..1e12,
        tiny_database in any::<bool>(),
        drift_scale in any::<u32>(),
    ) {
        let margin = if tiny_database { f64::INFINITY } else { finite_margin };
        let kind = [
            SubscriptionKind::Granted,
            SubscriptionKind::Invalidated,
            SubscriptionKind::Ended,
        ][kind_tag];
        let p = SubscriptionUpdatePayload { request_id, kind, version, margin, drift_scale };
        let back = SubscriptionUpdatePayload::decode(&p.encode()).unwrap();
        prop_assert_eq!(back.request_id, p.request_id);
        prop_assert_eq!(back.kind, p.kind);
        prop_assert_eq!(back.version, p.version);
        prop_assert_eq!(back.margin.to_bits(), p.margin.to_bits());
        prop_assert_eq!(back.drift_scale, p.drift_scale);
    }

    /// Unsubscribe round-trips for any group/request pair.
    #[test]
    fn unsubscribe_round_trips(group_id in any::<u64>(), request_id in any::<u32>()) {
        let p = UnsubscribePayload { group_id, request_id };
        prop_assert_eq!(UnsubscribePayload::decode(&p.encode()).unwrap(), p);
    }
}

// The v8 shape-padding layer: any pad amount must be invisible to the
// payload after the strip.
proptest! {
    /// A padded frame occupies exactly header + payload + pad bytes on
    /// the wire, and reads back bit-exactly: same type, same payload,
    /// the pad length preserved for observers and nothing else.
    #[test]
    fn padded_frames_round_trip_bit_exactly(
        type_tag in 0usize..3,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        pad in 0usize..8192,
    ) {
        let frame_type = [FrameType::Answer, FrameType::Error, FrameType::Busy][type_tag];
        let mut padded = Vec::new();
        write_frame_padded(&mut padded, frame_type, &payload, pad).unwrap();
        prop_assert_eq!(padded.len(), HEADER_BYTES + payload.len() + pad);

        let frame = read_frame(&mut &padded[..], DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(frame.frame_type, frame_type);
        prop_assert_eq!(frame.pad, pad);
        prop_assert_eq!(&frame.payload, &payload);

        // Strip equivalence: the padded and unpadded encodings of the
        // same payload decode to identical bytes.
        let mut plain = Vec::new();
        write_frame(&mut plain, frame_type, &payload).unwrap();
        let unpadded = read_frame(&mut &plain[..], DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(unpadded.payload, frame.payload);
        prop_assert_eq!(unpadded.pad, 0);
    }
}

/// One hardened server shared by every live-mutation case (startup is
/// expensive; the property only needs the server to *survive*).
fn live_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let config = PpgnnConfig {
            k: 2,
            d: 3,
            delta: 6,
            keysize: 128,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let pois: Vec<Poi> = (0..64)
            .map(|i| Poi::new(i, Point::new((i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0)))
            .collect();
        let server_config = ServerConfig {
            // Short whole-frame deadline so a length-field mutation
            // (server waits for bytes that never come) reaps quickly.
            frame_read_timeout: Duration::from_millis(300),
            rate_limit_per_sec: 0.0, // cases arrive in a burst
            ..ServerConfig::default()
        };
        serve_world(
            Arc::new(Lsp::new(pois, config)),
            "127.0.0.1:0",
            server_config,
        )
        .expect("live server")
    })
}

/// Sends raw bytes at the live server and demands a *bounded, typed*
/// reaction: some reply frame or a clean EOF within the probe timeout.
/// A read timeout means a connection thread wedged — the defect the
/// hostile-client hardening exists to prevent.
fn assert_contained(bytes: &[u8]) {
    let handle = live_server();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.set_nodelay(true).ok();
    // A write error means the server already closed on us mid-send
    // (possible for large mutated query frames): that is containment.
    let sent = stream.write_all(bytes).and_then(|()| stream.flush());
    if let Err(e) = sent {
        assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            "send failed oddly: {e}"
        );
    }
    loop {
        match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
            // Any typed frame back is containment; keep draining until
            // the server closes or stops talking within one poll.
            Ok(_) => {
                stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .unwrap();
            }
            Err(ServerError::ConnectionClosed) => break,
            Err(ServerError::Io(e)) => match e.kind() {
                // The server chose to keep the connection open: fine.
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => break,
                // A reset is still the server slamming the door (closing
                // with our bytes unread sends RST, not FIN): containment.
                std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe => break,
                _ => panic!("client-side decode of server reply failed: {e}"),
            },
            Err(e) => panic!("client-side decode of server reply failed: {e}"),
        }
    }
    // The server must still answer honest traffic on a fresh socket.
    let mut probe = TcpStream::connect(handle.local_addr()).expect("reconnect");
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut probe, FrameType::Ping, &[]).expect("ping");
    let frame = read_frame(&mut probe, DEFAULT_MAX_PAYLOAD).expect("pong");
    assert_eq!(frame.frame_type, FrameType::Pong, "server wedged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any single-byte mutation of any valid frame, fired at a live
    /// server: the server answers with a typed error or closes the
    /// connection, never panics, and keeps serving honest pings.
    #[test]
    fn live_server_contains_mutated_frames(
        which in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let mut bytes = frame.clone();
        let i = pos.index(bytes.len());
        bytes[i] ^= xor;
        assert_contained(&bytes);
    }

    /// Truncated frames (the slowloris shape: a header promising more
    /// than arrives) are reaped by the whole-frame deadline.
    #[test]
    fn live_server_contains_truncated_frames(
        which in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let corpus = corpus();
        let (_, frame) = &corpus[which.index(corpus.len())];
        let bytes = &frame[..cut.index(frame.len())];
        assert_contained(bytes);
    }
}
