//! End-to-end tests of the networked LSP: concurrent client groups over
//! real TCP sockets on an ephemeral port, answers checked against the
//! in-process protocol, plus backpressure, deadline, and drain
//! semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::{ErrorCode, ServerError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn grid_db(side: usize) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(
                    (i % side) as f64 / side as f64,
                    (i / side) as f64 / side as f64,
                ),
            )
        })
        .collect()
}

fn test_config(variant: Variant) -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        variant,
        ..PpgnnConfig::fast_test()
    }
}

/// ≥4 concurrent client groups — half PPGNN, half PPGNN-OPT — issue
/// queries over TCP; every answer must match the in-process protocol
/// (both resolve to the exact plaintext top-k of the shared database).
#[test]
fn concurrent_groups_match_in_process_protocol() {
    // The server's own variant setting is irrelevant to Algorithm 2
    // (the query message is self-describing); groups pick per-session.
    let lsp = Arc::new(Lsp::new(grid_db(10), test_config(Variant::Plain)));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..4)
        .map(|g| {
            let lsp = Arc::clone(&lsp);
            std::thread::spawn(move || {
                let variant = if g % 2 == 0 {
                    Variant::Plain
                } else {
                    Variant::Opt
                };
                let config = test_config(variant);
                let mut rng = ChaCha8Rng::seed_from_u64(100 + g);
                let mut client =
                    GroupClient::connect(addr, g + 1, config.clone(), lsp.space(), 2, &mut rng)
                        .expect("connect");
                for q in 0..3 {
                    let users = vec![
                        Point::new(0.1 + 0.07 * g as f64, 0.2 + 0.05 * q as f64),
                        Point::new(0.6 - 0.05 * g as f64, 0.4),
                    ];
                    let remote = client.query(&users, &mut rng).expect("remote query");
                    // The same query through the in-process driver.
                    let local = run_ppgnn(&lsp, &users, &mut rng).expect("local run");
                    assert_eq!(remote.len(), local.answer.len(), "group {g} query {q}");
                    for (r, l) in remote.iter().zip(&local.answer) {
                        assert!(r.dist(l) < 1e-9, "group {g} query {q}: {r:?} vs {l:?}");
                    }
                    // And both match the plaintext oracle.
                    let oracle = lsp.plaintext_answer(&users, config.k);
                    for (r, o) in remote.iter().zip(&oracle) {
                        assert!(r.dist(&o.location) < 1e-6);
                    }
                }
                assert_eq!(client.queries_issued(), 3);
                client.goodbye();
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client group panicked");
    }

    let stats = handle.stats();
    assert_eq!(stats.queries_ok.load(Ordering::Relaxed), 12);
    assert_eq!(stats.queries_err.load(Ordering::Relaxed), 0);
    assert_eq!(handle.registry().len(), 4);
    assert_eq!(handle.registry().queries_served(1), 3);
    handle.shutdown();
}

/// An engine that sleeps per candidate answer, to hold the worker busy.
struct SlowEngine {
    inner: MbmEngine,
    delay: Duration,
    calls: AtomicU64,
}

impl QueryEngine for SlowEngine {
    fn answer(&self, query: &[Point], k: usize, agg: Aggregate) -> Vec<Poi> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        self.inner.answer(query, k, agg)
    }

    fn database_size(&self) -> usize {
        self.inner.database_size()
    }
}

fn slow_lsp(delay: Duration) -> Arc<Lsp> {
    let engine = SlowEngine {
        inner: MbmEngine::new(grid_db(8)),
        delay,
        calls: AtomicU64::new(0),
    };
    Arc::new(Lsp::with_engine(
        Box::new(engine),
        test_config(Variant::Plain),
        Rect::UNIT,
    ))
}

/// With one worker and a one-deep queue, a burst of concurrent queries
/// must be shed with `Busy` — not queued unboundedly, not dropped
/// silently, not panicking.
#[test]
fn full_queue_sheds_with_busy() {
    let lsp = slow_lsp(Duration::from_millis(30));
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..6)
        .map(|g| {
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(200 + g);
                let mut client = GroupClient::connect(
                    addr,
                    g + 1,
                    test_config(Variant::Plain),
                    Rect::UNIT,
                    2,
                    &mut rng,
                )
                .expect("connect");
                // This test is about the shed itself, so turn off the
                // client's built-in retry and let `Busy` surface.
                client.retry.max_attempts = 1;
                let users = vec![Point::new(0.2, 0.2), Point::new(0.5, 0.5)];
                match client.query(&users, &mut rng) {
                    Ok(answer) => {
                        assert!(!answer.is_empty());
                        Ok(())
                    }
                    Err(ServerError::ServerBusy { retry_after_ms }) => {
                        assert!(retry_after_ms > 0);
                        Err(())
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let answered = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes.len() - answered;

    // The worker plus the one queue slot bound concurrency: with six
    // simultaneous slow queries at least one must have been shed, and
    // whatever got through must have been answered correctly.
    assert!(answered >= 1, "no query got through");
    assert!(shed >= 1, "no query was shed");
    assert_eq!(
        handle.stats().busy_shed.load(Ordering::Relaxed),
        shed as u64
    );
    handle.shutdown();
}

/// A request whose deadline expires while it waits in the queue is
/// answered with a typed `DeadlineExceeded` error, not processed late.
#[test]
fn queued_past_deadline_is_rejected() {
    let lsp = slow_lsp(Duration::from_millis(40));
    let config = ServerConfig {
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    };
    let handle = serve_world(lsp, "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // Occupy the single worker with a long query.
    let blocker = std::thread::spawn(move || {
        let mut rng = ChaCha8Rng::seed_from_u64(300);
        let mut client = GroupClient::connect(
            addr,
            1,
            test_config(Variant::Plain),
            Rect::UNIT,
            2,
            &mut rng,
        )
        .unwrap();
        client
            .query(&[Point::new(0.1, 0.1), Point::new(0.2, 0.2)], &mut rng)
            .expect("blocker query")
    });
    std::thread::sleep(Duration::from_millis(60));

    // This query can only wait in the queue; its 1 ms deadline expires
    // long before the worker frees up.
    let mut rng = ChaCha8Rng::seed_from_u64(301);
    let mut client = GroupClient::connect(
        addr,
        2,
        test_config(Variant::Plain),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    client.deadline_ms = 1;
    // A 1 ms deadline would also expire on a retry; disable retries so
    // the typed error surfaces instead of burning the backoff budget.
    client.retry.max_attempts = 1;
    let err = client
        .query(&[Point::new(0.3, 0.3), Point::new(0.4, 0.4)], &mut rng)
        .expect_err("deadline should expire in queue");
    match err {
        ServerError::Remote { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }

    assert!(!blocker.join().unwrap().is_empty());
    assert!(handle.stats().deadline_expired.load(Ordering::Relaxed) >= 1);
    handle.shutdown();
}

/// Shutdown drains: a query already accepted keeps its worker and its
/// reply; `shutdown()` returns only after the in-flight answer is out.
#[test]
fn shutdown_drains_inflight_queries() {
    let lsp = slow_lsp(Duration::from_millis(25));
    let handle = serve_world(
        lsp,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let client_thread = std::thread::spawn(move || {
        let mut rng = ChaCha8Rng::seed_from_u64(400);
        let mut client = GroupClient::connect(
            addr,
            9,
            test_config(Variant::Plain),
            Rect::UNIT,
            2,
            &mut rng,
        )
        .unwrap();
        client.query(&[Point::new(0.25, 0.25), Point::new(0.75, 0.5)], &mut rng)
    });

    // Let the query reach the queue, then shut down while it is in
    // flight. The slow engine guarantees processing outlives the signal.
    std::thread::sleep(Duration::from_millis(80));
    handle.shutdown();

    let answer = client_thread
        .join()
        .expect("client panicked")
        .expect("in-flight query must be drained, not dropped");
    assert!(!answer.is_empty());
}

/// The registry outlives connections: a fresh TCP connection may send a
/// raw `Query` for an already-negotiated group without any `Hello`, and
/// the server decodes it under the registered session parameters. An
/// unknown group on the same socket gets a typed `NoSession` error.
#[test]
fn registry_survives_reconnect_without_handshake() {
    use ppgnn::server::frame::{
        read_frame, write_frame, AnswerPayload, ErrorPayload, FrameType, QueryPayload,
        DEFAULT_MAX_PAYLOAD,
    };

    let lsp = Arc::new(Lsp::new(grid_db(10), test_config(Variant::Plain)));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut rng = ChaCha8Rng::seed_from_u64(500);

    // First connection performs the handshake and one query, then leaves.
    let config = test_config(Variant::Plain);
    let mut first =
        GroupClient::connect(addr, 77, config.clone(), lsp.space(), 2, &mut rng).unwrap();
    let users = vec![Point::new(0.3, 0.3), Point::new(0.6, 0.6)];
    first.query(&users, &mut rng).unwrap();
    first.goodbye();

    // Second connection: raw frames, no Hello. The session must resolve
    // from the registry by group ID alone.
    let mut session = ppgnn::prelude::PpgnnSession::new(128, &mut rng);
    let plan = session
        .plan(&config, lsp.space(), &users, &mut rng)
        .unwrap();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let payload = QueryPayload {
        group_id: 77,
        request_id: 5,
        deadline_ms: 0,
        trace: ppgnn::telemetry::trace::TraceContext::new(1, 1, false),
        location_sets: plan.location_sets.iter().map(|s| s.to_wire()).collect(),
        query: plan.query.to_wire(),
    };
    write_frame(&mut stream, FrameType::Query, &payload.encode()).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::Answer);
    let ans = AnswerPayload::decode(&frame.payload).unwrap();
    assert_eq!(ans.request_id, 5);
    let msg = ppgnn::core::messages::AnswerMessage::from_wire(
        &ans.answer,
        session.public_key(),
        ans.two_phase,
    )
    .unwrap();
    let answer = session.decode(config.k, &msg).unwrap();
    let oracle = lsp.plaintext_answer(&users, 2);
    for (r, o) in answer.iter().zip(&oracle) {
        assert!(r.dist(&o.location) < 1e-6);
    }

    // An unregistered group on the same socket: typed NoSession error.
    let plan2 = session
        .plan(&config, lsp.space(), &users, &mut rng)
        .unwrap();
    let stray = QueryPayload {
        group_id: 99_999,
        request_id: 6,
        deadline_ms: 0,
        trace: ppgnn::telemetry::trace::TraceContext::new(1, 1, false),
        location_sets: plan2.location_sets.iter().map(|s| s.to_wire()).collect(),
        query: plan2.query.to_wire(),
    };
    write_frame(&mut stream, FrameType::Query, &stray.encode()).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::Error);
    let err = ErrorPayload::decode(&frame.payload).unwrap();
    assert_eq!(err.request_id, 6);
    assert_eq!(err.code, ErrorCode::NoSession);

    assert_eq!(handle.registry().len(), 1);
    assert_eq!(handle.registry().queries_served(77), 2);
    handle.shutdown();
}
