//! Golden observability tests: a live server's `Stats` reply reflects
//! exactly the pipeline stages the workload exercised, the snapshot
//! survives its wire encoding bit-for-bit, and the `Pong` health block
//! agrees with the server's state.
//!
//! The telemetry registry is process-global, so everything that makes
//! assertions about *absolute* stage counts lives in one test function
//! (ordered sanitize-off before sanitize-on); the independent tests
//! below only assert deltas or touch stages no other test cares about.

use std::sync::Arc;
use std::time::Duration;

use ppgnn::prelude::*;
use ppgnn::server::frame::{read_frame, write_frame, FrameType, StatsReplyPayload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn grid_db(side: usize) -> Vec<Poi> {
    (0..side * side)
        .map(|i| {
            Poi::new(
                i as u32,
                Point::new(
                    (i % side) as f64 / side as f64,
                    (i / side) as f64 / side as f64,
                ),
            )
        })
        .collect()
}

fn test_config(sanitize: bool) -> PpgnnConfig {
    PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize,
        variant: Variant::Plain,
        ..PpgnnConfig::fast_test()
    }
}

fn run_queries(addr: std::net::SocketAddr, lsp: &Arc<Lsp>, sanitize: bool, group: u64) -> u64 {
    let config = test_config(sanitize);
    let mut rng = ChaCha8Rng::seed_from_u64(7 + group);
    let mut client =
        GroupClient::connect(addr, group, config, lsp.space(), 2, &mut rng).expect("connect");
    let queries = 3u64;
    for q in 0..queries {
        let users = vec![
            Point::new(0.15 + 0.1 * q as f64, 0.3),
            Point::new(0.7, 0.25 + 0.1 * q as f64),
        ];
        client.query(&users, &mut rng).expect("query");
    }
    queries
}

/// Stages every PPGNN (plain-variant) query must pass through. These are
/// the same names the CI bench-smoke gate requires from loadgen.
const EXERCISED: &[&str] = &[
    "client-plan",
    "client-encode",
    "wire-encode",
    "wire-decode",
    "validate",
    "candidate-eval",
    "paillier-encrypt",
    "paillier-decrypt",
    "paillier-dot",
    "private-selection",
    "end-to-end",
];

/// The golden run: sanitize-off queries light up every pipeline stage
/// except sanitation; turning sanitation on lights that one up too.
#[test]
fn stats_reply_reflects_exactly_the_exercised_stages() {
    let base = ppgnn::telemetry::global().snapshot();

    // Phase 1: sanitation disabled — the stage must stay dark.
    let lsp = Arc::new(Lsp::new(grid_db(10), test_config(false)));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let queries = run_queries(handle.local_addr(), &lsp, false, 1);

    let mut client = GroupClient::connect(
        handle.local_addr(),
        2,
        test_config(false),
        lsp.space(),
        2,
        &mut ChaCha8Rng::seed_from_u64(99),
    )
    .expect("stats connect");
    let snap = client.server_stats().expect("Stats request");

    for stage in EXERCISED {
        assert!(
            snap.stage_count(stage) > base.stage_count(stage),
            "stage {stage} not recorded: {} -> {}",
            base.stage_count(stage),
            snap.stage_count(stage)
        );
        // Percentiles come from histogram bucket edges, so p99 may
        // round above the exact max; only their ordering is invariant.
        let s = snap.stage(stage).expect("stage present");
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
    }
    assert_eq!(
        snap.stage_count("sanitation"),
        base.stage_count("sanitation"),
        "sanitation ran despite sanitize=false"
    );
    assert!(snap.counter("queries-ok").unwrap_or(0) >= queries);
    assert!(snap.counter("paillier-dot-ops").unwrap_or(0) > 0);
    assert!(snap.gauge("live-workers").unwrap_or(0) > 0);
    assert!(snap.gauge("uptime-ms").is_some());
    assert!(snap.missing_stages(EXERCISED).is_empty());
    handle.shutdown();

    // Phase 2: same workload with sanitation enabled — only now does
    // the sanitation stage (and its Z-test counter) move.
    let lsp = Arc::new(Lsp::new(grid_db(10), test_config(true)));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();
    run_queries(handle.local_addr(), &lsp, true, 3);
    let after = handle.telemetry_snapshot();
    handle.shutdown();

    assert!(
        after.stage_count("sanitation") > snap.stage_count("sanitation"),
        "sanitize=true did not record the sanitation stage"
    );
    assert!(
        after.counter("sanitation-z-tests").unwrap_or(0)
            > snap.counter("sanitation-z-tests").unwrap_or(0)
    );
}

/// A `Stats` exchange needs no session: a raw TCP connection may ask
/// before (or without ever) completing a Hello, and the snapshot it
/// gets back decodes to exactly what the server serialized.
#[test]
fn stats_round_trips_the_wire_sessionless() {
    let lsp = Arc::new(Lsp::new(grid_db(6), test_config(false)));
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, FrameType::Stats, &[]).unwrap();
    let frame = read_frame(&mut stream, ppgnn::server::frame::DEFAULT_MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, FrameType::StatsReply);
    let wire = StatsReplyPayload::decode(&frame.payload).unwrap().snapshot;

    // The payload is itself the snapshot encoding: re-encoding what we
    // decoded must reproduce it bit-for-bit (golden wire format).
    let reencoded = StatsReplyPayload {
        snapshot: wire.clone(),
    }
    .encode();
    assert_eq!(reencoded, frame.payload);
    let back = TelemetrySnapshot::from_bytes(&wire.to_bytes()).unwrap();
    assert_eq!(back, wire);

    // Server-side counters are merged into the snapshot.
    assert!(wire.counter("accepted").is_some());
    assert!(wire.gauge("live-workers").unwrap_or(0) > 0);
    handle.shutdown();
}

/// The Pong health block and the Stats snapshot are two faces of the
/// same registry: their shared fields must agree (up to the queries we
/// run between the two reads).
#[test]
fn pong_health_agrees_with_stats_snapshot() {
    let lsp = Arc::new(Lsp::new(grid_db(6), test_config(false)));
    let config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let handle = serve_world(Arc::clone(&lsp), "127.0.0.1:0", config).unwrap();
    run_queries(handle.local_addr(), &lsp, false, 11);

    let mut client = GroupClient::connect(
        handle.local_addr(),
        12,
        test_config(false),
        lsp.space(),
        2,
        &mut ChaCha8Rng::seed_from_u64(5),
    )
    .expect("connect");
    let pong = client.ping().expect("ping");
    let snap = client.server_stats().expect("stats");

    assert_eq!(pong.live_workers, 3);
    assert_eq!(
        u64::from(pong.live_workers),
        snap.gauge("live-workers").unwrap()
    );
    assert!(pong.queries_ok >= 3);
    assert!(snap.counter("queries-ok").unwrap() >= pong.queries_ok);
    assert!(snap.gauge("uptime-ms").unwrap() >= pong.uptime_ms || pong.uptime_ms == 0);

    // The health block also round-trips its fixed-width encoding.
    let health = handle.health();
    let decoded = HealthSnapshot::decode(&health.encode()).unwrap();
    assert_eq!(decoded, health);
    handle.shutdown();
}
